"""Figure 1 / Figure 5: the message-passing pattern.

A writer initializes a message and raises a flag; a reader spins on the
flag and then consumes the message.  Correct on TSO (stores stay
ordered), broken on WMM without barriers.
"""


def mc_source():
    """Litmus-scale client: one writer, reader asserts the payload."""
    return """
int flag = 0;
int msg = 0;

void writer() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(writer);
    int data;
    while (flag != 1) { }
    data = msg;
    assert(data == 42);
    thread_join(t);
    return 0;
}
"""


def indirect_mc_source():
    """Message passing through pointer parameters (alias-precision demo).

    The publish helper writes the payload and raises the flag through
    plain ``int*`` parameters — a layer of indirection legacy code
    loves.  It is recursive (a no-op countdown), so the pre-inliner
    cannot flatten it: under type-based keys the ``*f = 1`` store has no
    location key, the flag's buddy group never reaches it, and the port
    stays broken on WMM — the known detection gap.  The points-to
    provider resolves ``f`` to ``@flag`` and closes it.
    """
    return """
int flag = 0;
int msg[2];

void publish(int *f, int *m, int depth) {
    if (depth > 0) {
        publish(f, m, depth - 1);
        return;
    }
    m[0] = 7;
    m[1] = 9;
    *f = 1;
}

void writer() {
    publish(&flag, msg, 1);
}

int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    assert(msg[0] == 7);
    assert(msg[1] == 9);
    thread_join(t);
    return 0;
}
"""


def perf_source(rounds=400):
    """Performance client: repeated ping-pong message passing."""
    return f"""
int flag = 0;
int ack = 0;
int msg = 0;

void writer() {{
    for (int r = 1; r <= {rounds}; r++) {{
        msg = r * 3;
        flag = r;
        while (ack != r) {{ }}
    }}
}}

int main() {{
    int t = thread_create(writer);
    int sum = 0;
    for (int r = 1; r <= {rounds}; r++) {{
        while (flag != r) {{ }}
        sum = sum + msg;
        ack = r;
    }}
    thread_join(t);
    assert(sum == 3 * ({rounds} * ({rounds} + 1)) / 2);
    return sum;
}}
"""
