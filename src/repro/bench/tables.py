"""Harnesses regenerating every table of the paper's evaluation.

Each ``tableN`` function returns structured rows; ``format_table`` turns
them into the same layout the paper prints.  The pytest-benchmark files
under ``benchmarks/`` call these and record paper-vs-measured values.
"""

import math
import time

from repro.api import compile_source, port_module, run_module
from repro.bench.corpus import BENCHMARKS, PHOENIX_PAPER_NUMBERS
from repro.bench.synth import PAPER_TABLE3, generate_codebase
from repro.core.config import PortingLevel
from repro.core.report import count_barriers


# ---------------------------------------------------------------------------
# Table 1 — qualitative comparison of porting approaches
# ---------------------------------------------------------------------------

TABLE1 = [
    # approach, safe, efficient, scalable, practical
    ("Naive", "yes", "no", "yes", "yes"),
    ("Hardware", "yes", "partly", "yes", "partly"),
    ("Expert", "partly", "yes", "no", "no"),
    ("VSync", "yes", "yes", "no", "no"),
    ("Musketeer", "yes", "partly", "partly", "no"),
    ("Lasagne", "yes", "no", "yes", "no"),
    ("TSan", "no", "partly", "partly", "no"),
    ("AtoMig", "partly", "yes", "yes", "yes"),
]


def table1():
    """The paper's Table 1 (static data: the design-space argument)."""
    return [
        {"approach": row[0], "safe": row[1], "efficient": row[2],
         "scalable": row[3], "practical": row[4]}
        for row in TABLE1
    ]


# ---------------------------------------------------------------------------
# Table 2 — verification results on ck and lf-hash
# ---------------------------------------------------------------------------

TABLE2_BENCHMARKS = (
    "ck_ring", "ck_spinlock_cas", "ck_spinlock_mcs", "ck_sequence", "lf_hash",
)

#: Paper Table 2: does the variant verify? (Original, Expl, Spin, AtoMig)
TABLE2_PAPER = {
    "ck_ring": (False, True, True, True),
    "ck_spinlock_cas": (False, True, True, True),
    "ck_spinlock_mcs": (False, False, True, True),
    "ck_sequence": (False, False, False, True),
    "lf_hash": (False, False, False, True),
}

_TABLE2_LEVELS = (
    ("original", PortingLevel.ORIGINAL),
    ("expl", PortingLevel.EXPL),
    ("spin", PortingLevel.SPIN),
    ("atomig", PortingLevel.ATOMIG),
)


def table2(max_steps=600, max_states=400_000, jobs=None,
           robustness=None):
    """Model-check each benchmark variant under WMM (paper Table 2).

    ``jobs`` fans the 20 benchmark × level checks across worker
    processes (``atomig tables 2 --jobs N``); the default runs them
    sequentially in-process.  ``robustness=True`` lets the static
    pre-pass short-circuit robust variants (their ``*_states`` columns
    then read 0); the default keeps it off so the table reports true
    exploration sizes.
    """
    from repro.mc.parallel import CheckTask, run_tasks

    robustness = False if robustness is None else robustness
    tasks = [
        CheckTask(
            name=name, source=BENCHMARKS[name].mc_source(), model="wmm",
            level=level.value, max_steps=max_steps, max_states=max_states,
            robustness=robustness,
        )
        for name in TABLE2_BENCHMARKS
        for _level_name, level in _TABLE2_LEVELS
    ]
    results = iter(run_tasks(tasks, jobs=jobs))
    rows = []
    for name in TABLE2_BENCHMARKS:
        row = {"benchmark": name}
        for level_name, _level in _TABLE2_LEVELS:
            result = next(results)
            row[level_name] = result.ok
            row[f"{level_name}_states"] = result.states_explored
        expected = TABLE2_PAPER[name]
        row["matches_paper"] = (
            row["original"], row["expl"], row["spin"], row["atomig"]
        ) == expected
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Lint-pruning table — effect of prune_protected on the legacy benchmarks
# ---------------------------------------------------------------------------


LINT_BENCHMARKS = ("ck_spinlock_cas_legacy", "clht_lb_legacy")


def table_lint(benchmarks=LINT_BENCHMARKS, max_steps=4000,
               max_states=400_000, jobs=None):
    """Barrier counts with and without lock-protection pruning.

    For each legacy benchmark (volatile critical-section data, as in the
    real CK / CLHT sources) port once with plain AtoMig and once with
    ``prune_protected``; report the implicit-barrier counts, how many
    accesses the lockset analysis exempted, and whether the pruned
    variant still verifies under WMM.  ``jobs`` fans the WMM checks —
    the expensive part — across worker processes.
    """
    from repro.core.config import AtoMigConfig
    from repro.core.report import count_barriers
    from repro.mc.parallel import CheckTask, run_tasks

    tasks = [
        CheckTask(
            name=name, source=BENCHMARKS[name].mc_source(), model="wmm",
            level="atomig", config=AtoMigConfig(prune_protected=True),
            max_steps=max_steps, max_states=max_states,
        )
        for name in benchmarks
    ]
    results = run_tasks(tasks, jobs=jobs)
    rows = []
    for name, result in zip(benchmarks, results):
        benchmark = BENCHMARKS[name]
        module = compile_source(benchmark.mc_source(), name)
        atomig, _ = port_module(module, PortingLevel.ATOMIG)
        pruned, report = port_module(
            module, PortingLevel.ATOMIG,
            config=AtoMigConfig(prune_protected=True),
        )
        rows.append({
            "benchmark": name,
            "atomig_impl": count_barriers(atomig)[1],
            "pruned_impl": count_barriers(pruned)[1],
            "pruned": report.pruned_protected,
            "wmm_ok": result.ok,
        })
    return rows


# ---------------------------------------------------------------------------
# Table 8 — alias precision: type_based vs points_to location keys
# ---------------------------------------------------------------------------


#: Corpus programs written for the alias-precision comparison:
#: message_passing_indirect exhibits the type-based key *gap* (pointer
#: parameters), the other three exhibit its *over-approximation*
#: (thread-local objects matched by type).
ALIAS_BENCHMARKS = (
    "message_passing_indirect",
    "ck_sequence_snapshot",
    "ck_spinlock_cas_private",
    "lf_hash_copy",
)

TABLE8_BENCHMARKS = TABLE2_BENCHMARKS + ALIAS_BENCHMARKS


def table8(benchmarks=TABLE8_BENCHMARKS, max_steps=2500,
           max_states=400_000, jobs=None):
    """Implicit barriers and WMM verdicts per alias mode (Table 8).

    Ports every benchmark twice — ``alias_mode="type_based"`` and
    ``alias_mode="points_to"`` — and re-verifies both variants under
    WMM.  On the Table 2 programs the two modes must agree exactly
    (all synchronization there is reached through globals); on the
    alias corpus points_to removes thread-local barriers and closes the
    pointer-parameter detection gap.  ``jobs`` fans the WMM checks
    across worker processes.
    """
    from repro.core.config import AtoMigConfig
    from repro.mc.parallel import CheckTask, run_tasks

    modes = ("type_based", "points_to")
    tasks = [
        CheckTask(
            name=f"{name}:{mode}", source=BENCHMARKS[name].mc_source(),
            model="wmm", level="atomig",
            config=AtoMigConfig(alias_mode=mode),
            max_steps=max_steps, max_states=max_states,
        )
        for name in benchmarks
        for mode in modes
    ]
    results = iter(run_tasks(tasks, jobs=jobs))
    rows = []
    for name in benchmarks:
        module = compile_source(BENCHMARKS[name].mc_source(), name)
        impl = {}
        reports = {}
        for mode in modes:
            ported, report = port_module(
                module, PortingLevel.ATOMIG,
                config=AtoMigConfig(alias_mode=mode),
            )
            impl[mode] = count_barriers(ported)[1]
            reports[mode] = report
        tb_result = next(results)
        pt_result = next(results)
        pt_report = reports["points_to"]
        rows.append({
            "benchmark": name,
            "type_based_impl": impl["type_based"],
            "points_to_impl": impl["points_to"],
            "delta": impl["type_based"] - impl["points_to"],
            "pts_keyed": sum(
                1 for entry in pt_report.alias_provenance
                if entry["action"] == "atomized"
            ),
            "pruned_local": pt_report.pruned_thread_local,
            "tb_wmm_ok": tb_result.ok,
            "pt_wmm_ok": pt_result.ok,
        })
    return rows


# ---------------------------------------------------------------------------
# Table 3 — scalability statistics on the large applications
# ---------------------------------------------------------------------------


def table3(scale=100, seed=0, jobs=None, frontend_cache=None, profile=False):
    """Static statistics of the density-matched synthetic code bases.

    ``jobs`` fans the per-(application, level) ports across worker
    processes; each worker times its own build and port, so the
    build/port ratios stay honest under parallelism.
    ``frontend_cache`` overrides the on-disk parsed-module cache
    (None = honor ``ATOMIG_FRONTEND_CACHE``) — leave it off when the
    ``build_ratio`` column must reflect real frontend cost.
    ``profile`` attaches the merged per-stage pipeline profile to each
    row under the non-column ``"_stats"`` key.
    """
    if jobs is not None and jobs > 1:
        return _table3_parallel(scale, seed, jobs, frontend_cache, profile)
    rows = []
    for app_name, app_profile in PAPER_TABLE3.items():
        source = generate_codebase(app_name, scale=scale, seed=seed)
        sloc = source.count("\n")

        started = time.perf_counter()
        module = compile_source(source, app_name, cache=frontend_cache)
        build_seconds = time.perf_counter() - started

        orig_expl, orig_impl = count_barriers(module)

        started = time.perf_counter()
        ported, report = port_module(module, PortingLevel.ATOMIG)
        atomig_seconds = build_seconds + (time.perf_counter() - started)
        port_expl, port_impl = count_barriers(ported)

        naive, naive_report = port_module(module, PortingLevel.NAIVE)
        _n_expl, naive_impl = count_barriers(naive)

        row = _table3_row(
            app_name, app_profile, sloc, build_seconds, atomig_seconds,
            report, (orig_expl, orig_impl), (port_expl, port_impl),
            naive_impl,
        )
        if profile:
            row["_stats"] = _merged_stats(report, naive_report)
        rows.append(row)
    return rows


def _table3_row(app_name, app_profile, sloc, build_seconds, atomig_seconds,
                report, orig_barriers, atomig_barriers, naive_impl):
    return {
        "application": app_name,
        "sloc": sloc,
        "spinloops": report.num_spinloops,
        "optiloops": report.num_optimistic_loops,
        "build_seconds": build_seconds,
        "atomig_seconds": atomig_seconds,
        "build_ratio": atomig_seconds / build_seconds,
        "orig_explicit": orig_barriers[0],
        "orig_implicit": orig_barriers[1],
        "atomig_explicit": atomig_barriers[0],
        "atomig_implicit": atomig_barriers[1],
        "naive_implicit": naive_impl,
        "paper": app_profile,
    }


def _merged_stats(*reports):
    """JSON-ready merged pipeline profile of one or more ports."""
    from repro.core.profile import PipelineStats

    merged = PipelineStats(ports=0)
    for report in reports:
        if report is not None:
            merged.merge(report.stats)
    return merged.to_dict()


def _table3_parallel(scale, seed, jobs, frontend_cache, profile):
    """Per-(application, level) port jobs on a process pool."""
    from repro.core.parallel import PortTask, run_port_tasks

    apps = list(PAPER_TABLE3.items())
    tasks = [
        PortTask(
            name=app_name, synth=(app_name, scale, seed), level=level,
            frontend_cache=frontend_cache,
        )
        for app_name, _profile in apps
        for level in ("atomig", "naive")
    ]
    outcomes = iter(run_port_tasks(tasks, jobs=jobs))
    rows = []
    for app_name, app_profile in apps:
        atomig_out = next(outcomes)
        naive_out = next(outcomes)
        report = atomig_out.report
        # Generation is milliseconds; regenerate for the sloc column
        # instead of shipping megabytes of source through the pool.
        sloc = generate_codebase(app_name, scale=scale, seed=seed).count("\n")
        build_seconds = atomig_out.build_seconds
        atomig_seconds = build_seconds + atomig_out.port_seconds
        row = _table3_row(
            app_name, app_profile, sloc, build_seconds, atomig_seconds,
            report,
            (report.original_explicit_barriers,
             report.original_implicit_barriers),
            atomig_out.barriers, naive_out.barriers[1],
        )
        if profile:
            row["_stats"] = _merged_stats(report, naive_out.report)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 4 — dynamically executed barriers (Memcached)
# ---------------------------------------------------------------------------


def table4(requests=200):
    """Dynamic operation counts, original vs AtoMig Memcached."""
    benchmark = BENCHMARKS["memcached"]
    module = compile_source(benchmark.perf_source(requests), "memcached")
    original = run_module(module)
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    atomig = run_module(ported)
    rows = []
    for key in ("non-atomic loads", "non-atomic stores",
                "atomic loads", "atomic stores"):
        rows.append({
            "counter": key,
            "original": original.stats.barrier_table()[key],
            "atomig": atomig.stats.barrier_table()[key],
        })
    return rows


# ---------------------------------------------------------------------------
# Table 5 — performance of Naive vs AtoMig, normalized to the original
# ---------------------------------------------------------------------------

TABLE5_BENCHMARKS = (
    "mariadb", "postgresql", "leveldb", "memcached", "sqlite",
    "ck_ring", "ck_sequence", "ck_spinlock_cas", "ck_spinlock_mcs",
    "lf_hash", "clht_lb", "clht_lf",
)


#: Scheduler seeds averaged in the performance tables.  Lock-heavy
#: workloads are sensitive to quantum phasing; averaging a few seeds
#: plays the role of the paper's repeated benchmark runs.
PERF_SEEDS = (0, 1, 2)


def _mean_cycles(module, seeds=PERF_SEEDS):
    total = 0
    for seed in seeds:
        total += run_module(module, schedule_seed=seed).cycles
    return total / len(seeds)


def _baseline_module(benchmark, name):
    """The paper's 'original': the expert WMM port when one exists,
    otherwise the TSO sources compiled as-is (CLHT footnote '+')."""
    if benchmark.expert_source is not None:
        return compile_source(benchmark.expert_source(), f"{name}.expert")
    return compile_source(benchmark.perf_source(), f"{name}.orig")


def table5(benchmarks=TABLE5_BENCHMARKS, seeds=PERF_SEEDS, jobs=None,
           profile=False):
    """Measured Naive and AtoMig slowdowns vs the original binaries.

    ``jobs`` fans the per-(benchmark, variant) port+run jobs across
    worker processes; the VM is deterministic per seed, so the ratios
    are identical to the serial path's.
    """
    if jobs is not None and jobs > 1:
        return _table5_parallel(benchmarks, seeds, jobs, profile)
    rows = []
    for name in benchmarks:
        benchmark = BENCHMARKS[name]
        tso_module = compile_source(benchmark.perf_source(), name)
        baseline = _baseline_module(benchmark, name)
        base_cycles = _mean_cycles(baseline, seeds)

        naive, naive_report = port_module(tso_module, PortingLevel.NAIVE)
        atomig, atomig_report = port_module(tso_module, PortingLevel.ATOMIG)
        naive_cycles = _mean_cycles(naive, seeds)
        atomig_cycles = _mean_cycles(atomig, seeds)

        row = {
            "benchmark": name,
            "naive": naive_cycles / base_cycles,
            "atomig": atomig_cycles / base_cycles,
            "paper_naive": benchmark.paper_naive,
            "paper_atomig": benchmark.paper_atomig,
        }
        if profile:
            row["_stats"] = _merged_stats(naive_report, atomig_report)
        rows.append(row)
    return rows


def _table5_parallel(benchmarks, seeds, jobs, profile):
    """Per-(benchmark, variant) port+run jobs on a process pool."""
    from repro.core.parallel import PortTask, run_port_tasks

    seeds = tuple(seeds)
    tasks = []
    for name in benchmarks:
        benchmark = BENCHMARKS[name]
        perf_source = benchmark.perf_source()
        if benchmark.expert_source is not None:
            base_source, base_name = benchmark.expert_source(), f"{name}.expert"
        else:
            base_source, base_name = perf_source, f"{name}.orig"
        tasks.append(PortTask(
            name=base_name, source=base_source, run_seeds=seeds,
        ))
        for level in ("naive", "atomig"):
            tasks.append(PortTask(
                name=name, source=perf_source, level=level, run_seeds=seeds,
            ))
    outcomes = iter(run_port_tasks(tasks, jobs=jobs))
    rows = []
    for name in benchmarks:
        benchmark = BENCHMARKS[name]
        base_out, naive_out, atomig_out = (
            next(outcomes), next(outcomes), next(outcomes)
        )
        base_cycles = sum(base_out.cycles) / len(base_out.cycles)
        row = {
            "benchmark": name,
            "naive": (sum(naive_out.cycles) / len(seeds)) / base_cycles,
            "atomig": (sum(atomig_out.cycles) / len(seeds)) / base_cycles,
            "paper_naive": benchmark.paper_naive,
            "paper_atomig": benchmark.paper_atomig,
        }
        if profile:
            row["_stats"] = _merged_stats(
                naive_out.report, atomig_out.report
            )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 6 — Phoenix: Naive vs Lasagne vs AtoMig
# ---------------------------------------------------------------------------


def table6(jobs=None, profile=False):
    """Phoenix suite slowdowns for the three automated porters.

    ``jobs`` fans the per-(kernel, variant) port+run jobs across
    worker processes; the VM is deterministic per seed, so the ratios
    are identical to the serial path's.
    """
    levels = ("naive", "lasagne", "atomig")
    rows = []
    ratios = {level: [] for level in levels}

    if jobs is not None and jobs > 1:
        from repro.core.parallel import PortTask, run_port_tasks

        tasks = []
        for kernel in PHOENIX_PAPER_NUMBERS:
            source = BENCHMARKS[f"phoenix_{kernel}"].perf_source()
            tasks.append(PortTask(
                name=kernel, source=source, run_seeds=PERF_SEEDS,
            ))
            tasks += [
                PortTask(
                    name=kernel, source=source, level=level,
                    run_seeds=PERF_SEEDS,
                )
                for level in levels
            ]
        outcomes = iter(run_port_tasks(tasks, jobs=jobs))
        for kernel, paper in PHOENIX_PAPER_NUMBERS.items():
            base_out = next(outcomes)
            base_cycles = sum(base_out.cycles) / len(base_out.cycles)
            row = {"benchmark": kernel,
                   "paper_naive": paper[0],
                   "paper_lasagne": paper[1],
                   "paper_atomig": paper[2]}
            reports = []
            for level in levels:
                out = next(outcomes)
                reports.append(out.report)
                ratio = (sum(out.cycles) / len(out.cycles)) / base_cycles
                row[level] = ratio
                ratios[level].append(ratio)
            if profile:
                row["_stats"] = _merged_stats(*reports)
            rows.append(row)
    else:
        for kernel, paper in PHOENIX_PAPER_NUMBERS.items():
            benchmark = BENCHMARKS[f"phoenix_{kernel}"]
            module = compile_source(benchmark.perf_source(), kernel)
            base_cycles = _mean_cycles(module)
            row = {"benchmark": kernel,
                   "paper_naive": paper[0],
                   "paper_lasagne": paper[1],
                   "paper_atomig": paper[2]}
            reports = []
            for level_name, level in (
                ("naive", PortingLevel.NAIVE),
                ("lasagne", PortingLevel.LASAGNE),
                ("atomig", PortingLevel.ATOMIG),
            ):
                ported, report = port_module(module, level)
                reports.append(report)
                ratio = _mean_cycles(ported) / base_cycles
                row[level_name] = ratio
                ratios[level_name].append(ratio)
            if profile:
                row["_stats"] = _merged_stats(*reports)
            rows.append(row)

    geomean_row = {"benchmark": "geometric mean",
                   "paper_naive": 1.39, "paper_lasagne": 1.73,
                   "paper_atomig": 1.01}
    for level_name, values in ratios.items():
        geomean_row[level_name] = math.exp(
            sum(math.log(v) for v in values) / len(values)
        )
    rows.append(geomean_row)
    return rows


# ---------------------------------------------------------------------------
# Table 9 — oracle-guided barrier weakening on the Table 2 corpus
# ---------------------------------------------------------------------------


TABLE9_BENCHMARKS = TABLE2_BENCHMARKS


def table9(benchmarks=TABLE9_BENCHMARKS, max_steps=2500,
           max_states=400_000, jobs=None, robustness=None):
    """Blanket-SC vs weakened barrier cost per benchmark (Table 9).

    Ports every benchmark with AtoMig (all atomized accesses SEQ_CST),
    then runs the oracle-guided optimizer (:mod:`repro.opt`) on the
    result.  Columns report the estimated barrier cost before and
    after weakening (shared :func:`repro.vm.costs.estimate_cost`
    model), how many accesses relaxed / fences disappeared / sites had
    to stay strong, how many model-checker calls certified it, and
    that the WMM verdict is preserved.  ``jobs`` fans the per-benchmark
    optimizer runs across worker processes.  The oracle's robustness
    fast path is on by default (``robustness=False`` forces every
    query to explore); either way the cost columns are identical —
    the fast path only answers queries it can prove.
    """
    from repro.opt.parallel import OptimizeTask, run_optimize_tasks

    robustness = True if robustness is None else robustness
    tasks = [
        OptimizeTask(
            name=name, source=BENCHMARKS[name].mc_source(),
            level="atomig", max_steps=max_steps, max_states=max_states,
            robustness=robustness,
        )
        for name in benchmarks
    ]
    reports = run_optimize_tasks(tasks, jobs=jobs)
    rows = []
    for name, report in zip(benchmarks, reports):
        before = report["barrier_cost_before"]
        saved_pct = (
            100.0 * report["cycles_saved"] / before if before else 0.0
        )
        rows.append({
            "benchmark": name,
            "cost_sc": before,
            "cost_opt": report["barrier_cost_after"],
            "saved_pct": saved_pct,
            "weakened": report["accesses_weakened"],
            "fences_gone": report["fences_deleted"],
            "frozen": len(report["frozen"]),
            "checks": report["checks_run"],
            "verdict_kept": report["verdict_preserved"],
            "_report": report,
        })
    return rows


# ---------------------------------------------------------------------------
# Table 10 — static fence repair vs oracle weakening, per architecture
# ---------------------------------------------------------------------------


TABLE10_BENCHMARKS = TABLE9_BENCHMARKS

TABLE10_ARCHES = ("armv8", "power")


def table10(benchmarks=TABLE10_BENCHMARKS, arches=TABLE10_ARCHES,
            max_steps=2500, max_states=400_000, jobs=None):
    """Static repair vs oracle-guided weakening per architecture.

    Three ways to make each benchmark WMM-correct, costed under each
    architecture's weight table (:data:`repro.vm.costs.COST_MODELS`):

    - ``cost_sc`` — the robust blanket-SC baseline: the AtoMig port,
      plus its own min-cost repair completion when the port is not
      robust as-is (so the baseline carries the same guarantee);
    - ``cost_repair`` — bottom-up synthesis
      (:func:`repro.analysis.repair.resynthesize_ported`): relax every
      ported site, then statically repair to robustness — no model
      checking at all, ``cost_repair <= cost_sc`` by construction
      (the completed port is the synthesizer's incumbent);
    - ``cost_opt`` — the oracle-guided weakener seeded from the
      repaired module (``repair_seed=True``), which may weaken past
      robustness because the model checker proves more than the static
      criterion.

    ``jobs`` fans the benchmark × arch oracle runs across worker
    processes; the static columns are computed in-process (they take
    milliseconds).
    """
    from repro.analysis.repair import resynthesize_ported
    from repro.opt.parallel import OptimizeTask, run_optimize_tasks

    tasks = [
        OptimizeTask(
            name=name, source=BENCHMARKS[name].mc_source(),
            level="atomig", max_steps=max_steps, max_states=max_states,
            repair_seed=True, arch=arch,
        )
        for name in benchmarks for arch in arches
    ]
    reports = run_optimize_tasks(tasks, jobs=jobs)
    rows = []
    for position, name in enumerate(benchmarks):
        ported, _report = port_module(
            compile_source(BENCHMARKS[name].mc_source(), name),
            PortingLevel.ATOMIG,
        )
        for offset, arch in enumerate(arches):
            opt = reports[position * len(arches) + offset]
            _repaired, repair = resynthesize_ported(
                ported, model="wmm", arch=arch, verify=True,
                max_steps=max_steps, max_states=max_states,
            )
            rows.append({
                "benchmark": name,
                "arch": arch,
                "cost_sc": repair.incumbent.get("barriers", 0),
                "cost_repair": repair.barrier_cost_after,
                "cost_opt": opt["barrier_cost_after"],
                "strengthened": repair.strengthened,
                "fences": repair.fences_added,
                "solver": repair.solver,
                "robust_after": repair.robust_after,
                "verdict_kept": opt["verdict_preserved"],
                "_repair": repair.to_dict(),
                "_opt": opt,
            })
    return rows


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def format_table(rows, columns=None, floatfmt="{:.2f}", title=None):
    """Render rows (list of dicts) as an aligned text table."""
    if not rows:
        return "(empty)"
    columns = columns or [
        key for key in rows[0]
        if not key.startswith("paper") and not key.startswith("_")
    ]

    def render(value):
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)
