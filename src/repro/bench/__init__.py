"""Benchmark corpus and table harnesses for the paper's evaluation."""

from repro.bench.corpus import BENCHMARKS, Benchmark, get_benchmark

__all__ = ["BENCHMARKS", "Benchmark", "get_benchmark"]
