"""Registry of all benchmark programs used by tests and harnesses."""

from dataclasses import dataclass, field

from repro.bench.programs import (
    apps,
    ck_ring,
    ck_sequence,
    ck_spinlock_cas,
    ck_spinlock_mcs,
    classic_locks,
    clht,
    lf_hash,
    message_passing,
    phoenix,
)


@dataclass
class Benchmark:
    """One benchmark: sources for model checking and performance runs."""

    name: str
    description: str
    #: Builds the litmus-scale model-checking client (or None).
    mc_source: object = None
    #: Builds the exploration-perf gate client (defaults to mc_source):
    #: a model-checking-scale workload with disjoint-address
    #: parallelism, where partial-order reduction has real headroom.
    gate_source: object = None
    #: Builds the performance client (TSO input code).
    perf_source: object = None
    #: Builds the expert hand-ported WMM variant (CK benchmarks only);
    #: when present it is the Table 5 "original" baseline.
    expert_source: object = None
    #: Paper's Table 5 slowdowns, for EXPERIMENTS.md comparison.
    paper_naive: float = None
    paper_atomig: float = None
    tags: tuple = ()


BENCHMARKS = {}


def _register(benchmark):
    BENCHMARKS[benchmark.name] = benchmark
    return benchmark


def get_benchmark(name):
    return BENCHMARKS[name]


_register(Benchmark(
    name="message_passing",
    description="Figures 1/5: spinloop-published message",
    mc_source=message_passing.mc_source,
    perf_source=message_passing.perf_source,
    tags=("figure", "litmus"),
))

_register(Benchmark(
    name="message_passing_indirect",
    description="Message passing through int* parameters (the type-based "
                "key gap; alias-precision target)",
    mc_source=message_passing.indirect_mc_source,
    tags=("alias",),
))

_register(Benchmark(
    name="ck_ring",
    description="Concurrency Kit SPSC ring buffer",
    mc_source=ck_ring.mc_source,
    perf_source=ck_ring.perf_source,
    expert_source=ck_ring.expert_source,
    paper_naive=4.43,
    paper_atomig=0.85,
    tags=("ck", "table2", "table5"),
))

_register(Benchmark(
    name="ck_sequence",
    description="Concurrency Kit seqlock (Figure 6)",
    mc_source=ck_sequence.mc_source,
    perf_source=ck_sequence.perf_source,
    expert_source=ck_sequence.expert_source,
    paper_naive=5.35,
    paper_atomig=0.91,
    tags=("ck", "table2", "table5", "figure"),
))

_register(Benchmark(
    name="ck_spinlock_cas",
    description="Concurrency Kit CAS spinlock (Figure 4)",
    mc_source=ck_spinlock_cas.mc_source,
    perf_source=ck_spinlock_cas.perf_source,
    expert_source=ck_spinlock_cas.expert_source,
    paper_naive=3.75,
    paper_atomig=0.63,
    tags=("ck", "table2", "table5", "figure"),
))

_register(Benchmark(
    name="ck_spinlock_mcs",
    description="Concurrency Kit MCS queue lock",
    mc_source=ck_spinlock_mcs.mc_source,
    gate_source=ck_spinlock_mcs.gate_source,
    perf_source=ck_spinlock_mcs.perf_source,
    expert_source=ck_spinlock_mcs.expert_source,
    paper_naive=5.29,
    paper_atomig=0.64,
    tags=("ck", "table2", "table5"),
))

_register(Benchmark(
    name="ck_sequence_snapshot",
    description="Seqlock with a reader-local record snapshot "
                "(alias-precision target)",
    mc_source=ck_sequence.snapshot_mc_source,
    tags=("alias",),
))

_register(Benchmark(
    name="ck_spinlock_cas_private",
    description="TAS lock with per-thread private accumulators merged "
                "under the lock (alias-precision target)",
    mc_source=ck_spinlock_cas.private_mc_source,
    tags=("alias",),
))

_register(Benchmark(
    name="ck_spinlock_cas_legacy",
    description="CAS spinlock with volatile critical-section data "
                "(lint-pruning target)",
    mc_source=ck_spinlock_cas.legacy_mc_source,
    perf_source=ck_spinlock_cas.legacy_perf_source,
    tags=("lint",),
))

_register(Benchmark(
    name="lf_hash",
    description="MariaDB lock-free hash (Figure 7 bug)",
    mc_source=lf_hash.mc_source,
    gate_source=lf_hash.gate_source,
    perf_source=lf_hash.perf_source,
    paper_naive=3.05,
    paper_atomig=1.01,
    tags=("table2", "table5", "figure"),
))

_register(Benchmark(
    name="lf_hash_copy",
    description="Figure 7 client with a reader-local node snapshot "
                "(alias-precision target)",
    mc_source=lf_hash.copy_mc_source,
    tags=("alias",),
))

_register(Benchmark(
    name="treiber_stack",
    description="Treiber lock-free stack (extended corpus)",
    mc_source=classic_locks.treiber_stack_mc_source,
    perf_source=classic_locks.treiber_stack_perf_source,
    tags=("extended",),
))

_register(Benchmark(
    name="dpdk_ring",
    description="DPDK-style SPSC ring with compiler barriers (§1 anecdote)",
    mc_source=classic_locks.dpdk_ring_mc_source,
    tags=("extended",),
))

_register(Benchmark(
    name="peterson",
    description="Peterson's lock with the mandatory x86 mfence",
    mc_source=classic_locks.peterson_tso_source,
    tags=("extended",),
))

_register(Benchmark(
    name="clht_lb",
    description="CLHT lock-based hash table (no WMM original exists)",
    mc_source=clht.lb_mc_source,
    perf_source=clht.lb_perf_source,
    paper_naive=1.89,
    paper_atomig=1.10,
    tags=("table5",),
))

_register(Benchmark(
    name="clht_lb_legacy",
    description="CLHT lock-based with volatile values, as in the real "
                "sources (lint-pruning target)",
    mc_source=clht.lb_legacy_mc_source,
    perf_source=clht.lb_legacy_perf_source,
    tags=("lint",),
))

_register(Benchmark(
    name="clht_lf",
    description="CLHT lock-free hash table (no WMM original exists)",
    mc_source=clht.lf_mc_source,
    perf_source=clht.lf_perf_source,
    paper_naive=2.01,
    paper_atomig=1.40,
    tags=("table5",),
))

# The five large applications (runtime workload models).
_APP_PAPER_NUMBERS = {
    "mariadb": (1.27, 1.01),
    "postgresql": (1.35, 1.04),
    "leveldb": (1.66, 1.01),
    "memcached": (1.01, 1.00),
    "sqlite": (2.49, 1.03),
}
for _name, _builder in apps.APP_BENCHMARKS.items():
    _naive, _atomig = _APP_PAPER_NUMBERS[_name]
    _register(Benchmark(
        name=_name,
        description=f"{_name} runtime workload model",
        perf_source=_builder,
        paper_naive=_naive,
        paper_atomig=_atomig,
        tags=("app", "table5"),
    ))

# Phoenix suite (Table 6); paper numbers are (naive, lasagne, atomig).
PHOENIX_PAPER_NUMBERS = {
    "histogram": (2.80, 2.51, 1.00),
    "kmeans": (1.07, 1.60, 1.03),
    "linear_regression": (1.02, 1.90, 1.00),
    "matrix_multiply": (1.01, 1.49, 1.01),
    "string_match": (1.70, 1.35, 1.01),
}
for _name, _builder in phoenix.PHOENIX_BENCHMARKS.items():
    _register(Benchmark(
        name=f"phoenix_{_name}",
        description=f"Phoenix 2.0 {_name}",
        perf_source=_builder,
        paper_naive=PHOENIX_PAPER_NUMBERS[_name][0],
        paper_atomig=PHOENIX_PAPER_NUMBERS[_name][2],
        tags=("phoenix", "table6"),
    ))
