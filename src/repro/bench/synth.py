"""Synthetic large-codebase generator for the scalability study (Table 3).

The paper runs AtoMig on MariaDB (3.1 MSLOC) down to Memcached (29
KSLOC).  We cannot ship those code bases, so this generator emits Mini-C
applications that are *density-matched*: for each application profile it
reproduces the paper's per-SLOC rates of spinloops, optimistic loops and
pre-existing explicit/implicit barriers, scaled down by a configurable
factor (default 100x — a pure-Python frontend is about two orders of
magnitude slower than clang).

Generated code mixes:

- plain compute functions (the bulk of any real code base);
- spinloop functions in the paper's Figure 3 shapes (global flag waits,
  CAS acquire loops, masked-field waits);
- optimistic (seqlock-style) readers;
- functions using existing C11 atomics and inline asm (the original
  implicit/explicit barrier counts);
- a runnable ``main`` so the module also works on the VM.

Determinism: a seeded :class:`random.Random` drives all choices.
"""

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class AppProfile:
    """Static statistics of one application from the paper's Table 3."""

    name: str
    sloc: int
    spinloops: int
    optiloops: int
    build_seconds: float  # original build time
    atomig_seconds: float  # build time with AtoMig applied
    orig_explicit: int  # pre-existing explicit barriers
    orig_implicit: int  # pre-existing implicit barriers
    atomig_explicit: int
    atomig_implicit: int
    naive_implicit: int


#: Paper Table 3, verbatim.
PAPER_TABLE3 = {
    "mariadb": AppProfile("mariadb", 3_124_265, 12_880, 1_970,
                          1251, 2421, 0, 968, 12_361, 66_347, 366_774),
    "postgresql": AppProfile("postgresql", 880_400, 1_750, 544,
                             299, 640, 104, 340, 3_455, 42_744, 243_790),
    "leveldb": AppProfile("leveldb", 82_725, 458, 263,
                          77, 201, 0, 390, 2_798, 11_128, 65_042),
    "memcached": AppProfile("memcached", 28_957, 75, 20,
                            17, 30, 2, 0, 231, 1_564, 11_515),
    "sqlite": AppProfile("sqlite", 263_125, 1_057, 254,
                         241, 714, 1, 28, 4_016, 44_860, 122_611),
}


class SyntheticCodebase:
    """Generates one density-matched synthetic application."""

    def __init__(self, profile, scale=100, seed=0):
        self.profile = profile
        self.scale = scale
        self.rng = random.Random((hash(profile.name) & 0xFFFF) * 31 + seed)
        self.parts = []
        self.fn_counter = 0
        self.global_counter = 0
        # Scaled targets (at least one of each present feature).
        self.target_sloc = max(profile.sloc // scale, 400)
        self.n_spinloops = max(profile.spinloops // scale, 1)
        self.n_optiloops = max(profile.optiloops // scale, 1)
        self.n_explicit = max(profile.orig_explicit // scale,
                              1 if profile.orig_explicit else 0)
        self.n_implicit = max(profile.orig_implicit // scale,
                              1 if profile.orig_implicit else 0)

    # -- naming ------------------------------------------------------------

    def _fn(self, prefix):
        self.fn_counter += 1
        return f"{prefix}_{self.fn_counter}"

    def _glob(self, prefix):
        self.global_counter += 1
        return f"{prefix}_{self.global_counter}"

    # -- program fragments ----------------------------------------------------

    def _compute_function(self):
        name = self._fn("compute")
        iters = self.rng.randint(4, 16)
        lines = [f"int {name}(int x) {{",
                 "    int acc = x;",
                 f"    for (int i = 0; i < {iters}; i++) {{"]
        for _ in range(self.rng.randint(2, 6)):
            op = self.rng.choice(["+", "*", "^", "|"])
            lines.append(
                f"        acc = (acc {op} {self.rng.randint(1, 97)}) % 65521;"
            )
        lines += ["    }", "    return acc;", "}", ""]
        return name, "\n".join(lines)

    def _shared_helper(self):
        """Plain shared-state helper: Naive must atomize these accesses."""
        gname = self._glob("table")
        size = self.rng.choice([32, 64, 128])
        name = self._fn("touch")
        text = (
            f"int {gname}[{size}];\n"
            f"void {name}(int k, int v) {{\n"
            f"    {gname}[k % {size}] = {gname}[(k + 1) % {size}] + v;\n"
            f"}}\n\n"
        )
        return name, text

    def _spinloop_function(self, kind):
        gname = self._glob("flag")
        name = self._fn("wait")
        if kind == 0:  # Figure 3, spinloop 1: plain global wait
            text = (
                f"int {gname} = 0;\n"
                f"void {name}() {{\n"
                f"    while ({gname} == 0) {{ cpu_relax(); }}\n"
                f"}}\n\n"
            )
        elif kind == 1:  # Figure 3, spinloop 3: masked wait via a local
            text = (
                f"int {gname} = 0;\n"
                f"void {name}() {{\n"
                f"    int l;\n"
                f"    do {{\n"
                f"        l = {gname} & 255;\n"
                f"    }} while (l != 1);\n"
                f"}}\n\n"
            )
        else:  # CAS acquire loop (Figure 4)
            text = (
                f"int {gname} = 0;\n"
                f"void {name}() {{\n"
                f"    while (atomic_cmpxchg_explicit(&{gname}, 0, 1, "
                f"memory_order_relaxed) != 0) {{ cpu_relax(); }}\n"
                f"}}\n"
                f"void {name}_release() {{\n"
                f"    {gname} = 0;\n"
                f"}}\n\n"
            )
        return name, text

    def _optiloop_function(self):
        seq = self._glob("seq")
        data = self._glob("odata")
        name = self._fn("optread")
        return name, (
            f"volatile int {seq} = 0;\n"
            f"int {data} = 0;\n"
            f"int {name}() {{\n"
            f"    int s;\n"
            f"    int v;\n"
            f"    do {{\n"
            f"        s = {seq};\n"
            f"        v = {data};\n"
            f"    }} while (s % 2 != 0 || s != {seq});\n"
            f"    return v;\n"
            f"}}\n\n"
        )

    def _explicit_barrier_function(self):
        name = self._fn("asmfence")
        gname = self._glob("published")
        return name, (
            f"int {gname} = 0;\n"
            f"void {name}(int v) {{\n"
            f"    {gname} = v;\n"
            f'    __asm__("mfence");\n'
            f"}}\n\n"
        )

    def _implicit_barrier_function(self):
        name = self._fn("stat")
        gname = self._glob("counter")
        return name, (
            f"_Atomic int {gname} = 0;\n"
            f"void {name}() {{\n"
            f"    atomic_fetch_add_explicit(&{gname}, 1, "
            f"memory_order_relaxed);\n"
            f"}}\n\n"
        )

    # -- assembly ------------------------------------------------------------------

    def generate(self):
        """Return the complete Mini-C source text."""
        parts = [f"// synthetic codebase: {self.profile.name} "
                 f"(1/{self.scale} scale)\n"]
        compute_names = []

        for _ in range(self.n_explicit):
            _, text = self._explicit_barrier_function()
            parts.append(text)
        for _ in range(self.n_implicit):
            _, text = self._implicit_barrier_function()
            parts.append(text)
        for index in range(self.n_spinloops):
            _, text = self._spinloop_function(index % 3)
            parts.append(text)
        for _ in range(self.n_optiloops):
            _, text = self._optiloop_function()
            parts.append(text)

        current_sloc = sum(text.count("\n") for text in parts)
        while current_sloc < self.target_sloc:
            if self.rng.random() < 0.15:
                _, text = self._shared_helper()
            else:
                name, text = self._compute_function()
                compute_names.append(name)
            parts.append(text)
            current_sloc += text.count("\n")

        calls = "\n".join(
            f"    total = total + {name}({i});"
            for i, name in enumerate(compute_names[:20])
        )
        parts.append(
            "int main() {\n"
            "    int total = 0;\n"
            f"{calls}\n"
            "    return total;\n"
            "}\n"
        )
        return "".join(parts)


def generate_codebase(app_name, scale=100, seed=0):
    """Generate the synthetic stand-in for ``app_name`` at ``1/scale``."""
    profile = PAPER_TABLE3[app_name]
    return SyntheticCodebase(profile, scale=scale, seed=seed).generate()
