"""Exception hierarchy shared by all repro subsystems."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SourceError(ReproError):
    """An error attributable to a location in Mini-C source code."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{line}:{column or 0}: {message}"
        super().__init__(message)


class LexerError(SourceError):
    """Invalid character or token while scanning Mini-C source."""


class ParseError(SourceError):
    """Malformed syntax while parsing Mini-C source."""


class SemanticError(SourceError):
    """Type or scope error found during semantic analysis."""


class LoweringError(ReproError):
    """Internal failure while lowering the AST to IR."""


class IRError(ReproError):
    """Malformed IR detected by the builder or the verifier."""


class PassError(ReproError):
    """Failure inside an analysis or transformation pass."""


class VMError(ReproError):
    """Runtime error raised by the IR interpreter."""


class AssertionFailure(VMError):
    """A Mini-C ``assert`` failed during execution or model checking."""

    def __init__(self, message, thread_id=None):
        self.thread_id = thread_id
        super().__init__(message)


class ModelCheckError(ReproError):
    """The model checker could not complete exploration."""
