"""On-disk parsed-module cache keyed by source digest.

The benchmark harnesses and CI re-compile the same corpus dozens of
times per run — the frontend (lex → parse → analyze → lower → verify)
dominates Table 3's build times.  This cache stores the *lowered,
verified* module as a pickle keyed by the blake2b digest of the source
text, so the second compile of identical source is one unpickle.

Invalidation rules:

- the digest covers the source text, the module name, the cache format
  version (:data:`CACHE_VERSION` — bump on any IR or frontend change
  that alters compiled modules) and the running Python's
  ``major.minor`` (pickles are not guaranteed portable across
  versions);
- a corrupt, truncated or unpicklable entry is treated as a miss and
  recompiled — the cache can be deleted at any time;
- entries are written atomically (tempfile + rename) so concurrent
  port workers sharing a cache directory never observe partial files.

Callers always get a *fresh* module object: the in-memory layer keeps
the pickled bytes, not the module, and every hit re-unpickles.  The
pipeline mutates modules in place (inlining, atomization), so handing
out a shared instance would poison later hits.

The cache is off unless explicitly enabled — pass ``cache=True`` or
set ``ATOMIG_FRONTEND_CACHE=1``; ``ATOMIG_CACHE_DIR`` overrides the
default ``~/.cache/atomig`` directory.  Timing benchmarks that want
honest build times must leave it off.

``ATOMIG_CACHE_MAX_MB`` bounds the on-disk size: after every store the
oldest entries by mtime are evicted (LRU — disk hits refresh mtime)
until the directory fits.  Unset means unbounded, which is fine for
one-shot CLI runs but turns into a leak under a long-lived daemon
(:mod:`repro.serve`), so the serve quickstart sets it.
"""

import hashlib
import os
import pickle
import sys
import tempfile

#: Bump when compiled-module layout changes (new IR fields, frontend
#: passes, lowering differences) to invalidate stale entries.
CACHE_VERSION = 1

_ENV_ENABLE = "ATOMIG_FRONTEND_CACHE"
_ENV_DIR = "ATOMIG_CACHE_DIR"
_ENV_MAX_MB = "ATOMIG_CACHE_MAX_MB"

#: digest -> pickled module bytes (per-process layer over the disk).
_memory = {}


def cache_enabled():
    """True when the environment opts into the frontend cache."""
    return os.environ.get(_ENV_ENABLE, "").strip() not in ("", "0", "false")


def cache_dir():
    """Directory holding on-disk entries (created lazily)."""
    configured = os.environ.get(_ENV_DIR, "").strip()
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "atomig")


def source_digest(source, name="module"):
    """Stable cache key for one (source, module-name) compile."""
    hasher = hashlib.blake2b(digest_size=20)
    hasher.update(
        f"v{CACHE_VERSION}:py{sys.version_info[0]}.{sys.version_info[1]}:"
        f"{name}:".encode()
    )
    hasher.update(source.encode())
    return hasher.hexdigest()


def clear_memory_cache():
    """Drop the per-process layer (tests; bounded-memory callers)."""
    _memory.clear()


def _entry_path(digest):
    return os.path.join(cache_dir(), f"{digest}.pkl")


def load(digest):
    """Fresh module for ``digest`` or ``None`` on miss/corruption."""
    blob = _memory.get(digest)
    if blob is None:
        try:
            with open(_entry_path(digest), "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        _memory[digest] = blob
        try:
            # Refresh mtime so size eviction is LRU, not FIFO.
            os.utime(_entry_path(digest))
        except OSError:
            pass
    try:
        return pickle.loads(blob)
    except Exception:
        # Corrupt or stale entry: forget it and recompile.
        _memory.pop(digest, None)
        try:
            os.unlink(_entry_path(digest))
        except OSError:
            pass
        return None


def store(digest, module):
    """Pickle ``module`` under ``digest`` (atomic write; best effort)."""
    try:
        blob = pickle.dumps(module, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # RecursionError on very deep IR graphs, unpicklable metadata:
        # skip caching, the compile result is still returned.
        return False
    _memory[digest] = blob
    directory = cache_dir()
    try:
        os.makedirs(directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(
            dir=directory, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(blob)
            os.replace(temp_path, _entry_path(digest))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
    except OSError:
        return False  # read-only disk etc.: memory layer still works
    evict()
    return True


def cache_max_bytes():
    """Size limit from ``ATOMIG_CACHE_MAX_MB``; ``None`` = unbounded."""
    raw = os.environ.get(_ENV_MAX_MB, "").strip()
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    if megabytes <= 0:
        return None
    return int(megabytes * 1024 * 1024)


def evict(max_bytes=None):
    """Delete least-recently-used entries until the cache fits.

    ``max_bytes=None`` reads ``ATOMIG_CACHE_MAX_MB`` and is a no-op
    when unset, so one-shot CLI runs pay nothing.  Eviction is LRU by
    mtime (:func:`load` touches entries on disk hits).  Returns the
    number of entries removed; races with concurrent workers are
    benign — a vanished file is just skipped, and the entry would be
    recompiled on the next miss anyway.
    """
    if max_bytes is None:
        max_bytes = cache_max_bytes()
    if max_bytes is None:
        return 0
    directory = cache_dir()
    entries = []
    total = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".pkl"):
            continue
        path = os.path.join(directory, name)
        try:
            status = os.stat(path)
        except OSError:
            continue
        entries.append((status.st_mtime, status.st_size, path))
        total += status.st_size
    if total <= max_bytes:
        return 0
    removed = 0
    for _mtime, size, path in sorted(entries):
        if total <= max_bytes:
            break
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size
        removed += 1
    return removed
