"""Top-level convenience API.

These four functions cover the whole workflow of Figure 2 in the paper:
compile an application to IR, port it (AtoMig or a baseline), model-check
the result, and run it under the performance VM.
"""

from repro.core.config import AtoMigConfig, PortingLevel


def compile_source(source, name="module", cache=None):
    """Compile Mini-C ``source`` text into an IR :class:`Module`.

    Runs the lexer, parser, semantic analysis and the ``-O0``-style
    lowering, then verifies the produced IR.

    ``cache`` controls the frontend module cache
    (:mod:`repro.modcache`): ``True``/``False`` force it on/off, the
    default ``None`` defers to the ``ATOMIG_FRONTEND_CACHE``
    environment variable.  A hit returns a fresh unpickled module —
    never a shared instance — so callers may mutate the result freely.
    """
    from repro import modcache
    from repro.ir.verifier import verify_module
    from repro.lang.parser import parse
    from repro.lang.sema import analyze
    from repro.lower.lowering import lower_program

    if cache is None:
        cache = modcache.cache_enabled()
    digest = None
    if cache:
        digest = modcache.source_digest(source, name)
        module = modcache.load(digest)
        if module is not None:
            return module

    program = analyze(parse(source))
    module = lower_program(program, module_name=name)
    verify_module(module)
    if cache:
        modcache.store(digest, module)
    return module


def port_module(module, level=PortingLevel.ATOMIG, config=None,
                optimize=False, optimize_kwargs=None):
    """Port ``module`` for a weak memory model.

    Returns ``(ported_module, report)``.  The input module is cloned,
    never mutated, so original/ported variants can be compared.

    ``level`` selects the strategy (AtoMig, its Expl/Spin ablations, the
    Naive porter, or the Lasagne-like baseline); ``config`` overrides
    individual AtoMig knobs.  ``optimize=True`` runs the oracle-guided
    barrier weakener on the ported result (see :func:`optimize_module`);
    the weakening report lands in ``report.optimization``.
    """
    from repro.core.pipeline import run_porting

    return run_porting(module, level=level, config=config,
                       optimize=optimize, optimize_kwargs=optimize_kwargs)


def check_module(module, model="wmm", max_steps=2500, max_states=2_000_000,
                 reduce=None, robustness=False, engine=None, por=None,
                 macro=None):
    """Exhaustively model-check ``module`` starting from ``main``.

    ``model`` is ``"sc"``, ``"tso"`` or ``"wmm"``.  Returns a
    :class:`repro.mc.explorer.CheckResult` whose ``violation`` field
    holds a counterexample trace when an assertion can fail.
    Reduction is controlled by ``por`` (``"none"``/``"sleep"``/
    ``"dpor"``) and ``macro`` (``"on"``/``"off"``); ``reduce=False``
    is the deprecated alias for turning both off (the slow oracle in
    perf tests).  All backends return identical verdicts by
    construction.  ``robustness=True`` tries the static critical-cycle
    pre-pass first and skips exploration for provably robust modules.
    ``engine`` selects the exploration engine (``"inplace"``/
    ``"clone"``); the default is the explorer's (the fast in-place
    engine).
    """
    from repro.mc.explorer import check_module as _check

    kwargs = {} if engine is None else {"engine": engine}
    return _check(module, model=model, max_steps=max_steps,
                  max_states=max_states, reduce=reduce, por=por,
                  macro=macro, robustness=robustness, **kwargs)


def lint_module(module, name_heuristic=True):
    """Run the static race & portability linter on ``module``.

    Classifies every non-local memory access as lock / protected /
    unshared / read-only / racy / unknown using the interprocedural
    lockset analysis, and flags dead fences (not adjacent to any shared
    access on any path).  Returns a :class:`repro.core.report.LintReport`.
    """
    from repro.analysis.races import classify_module
    from repro.analysis.robustness import find_dead_fences
    from repro.core.report import LintReport

    return LintReport(
        races=classify_module(module, name_heuristic=name_heuristic),
        dead_fences=find_dead_fences(module, name_heuristic=name_heuristic),
    )


def run_module(module, entry="main", schedule_seed=0, cost_model=None,
               record_counts=False):
    """Execute ``module`` on the performance VM.

    Returns a :class:`repro.vm.interp.RunResult` with the program exit
    value, per-class dynamic operation counts (the paper's Table 4) and
    modeled cycle cost (Tables 5-6).  ``record_counts=True`` also
    records per-instruction execution counts into
    ``result.stats.instr_counts`` — the dynamic weighting input of
    :func:`repro.vm.costs.estimate_cost` and :func:`optimize_module`.
    """
    from repro.vm.interp import run_module as _run

    return _run(
        module, entry=entry, schedule_seed=schedule_seed,
        cost_model=cost_model, record_counts=record_counts,
    )


def repair_module(module, **kwargs):
    """Statically repair ``module`` to robustness (min-cost fences).

    Enumerates every critical cycle the robustness analyzer can reach,
    casts "break them all" as a min-cost cover over the delayable
    program-order pairs that close them, and applies the solved set of
    fence insertions / memory-order strengthenings.  Returns
    ``(repaired_module, RepairReport)``; the repaired module
    re-classifies robust, so its weak-model verdict provably equals its
    (unchanged) SC verdict.  See
    :func:`repro.analysis.repair.repair_module` for the knobs
    (``model``, ``arch``, ``verify``...).
    """
    from repro.analysis.repair import repair_module as _repair

    return _repair(module, **kwargs)


def start_service(host="127.0.0.1", port=0, job_dir=None, workers=None,
                  fanout=1):
    """Start the porting-as-a-service daemon in this process.

    Everything the one-shot functions above produce —
    :class:`PortingReport`, ``CheckResult``, ``OptimizationReport``,
    ``RepairReport`` — becomes submittable as a persistent job: a
    durable on-disk store (``ATOMIG_JOB_DIR``) that resumes across
    restarts, content-addressed dedup on source+config (an unchanged
    re-submission is an instant cache hit, never a re-port), and a
    stdlib HTTP API with streaming per-stage progress.  Non-blocking;
    returns a :class:`repro.serve.ServiceHandle` whose ``url`` is the
    bound address and whose ``stop()`` drains gracefully.  ``atomig
    serve`` is the CLI face of this function.
    """
    from repro.serve import start_service as _start

    return _start(host=host, port=port, job_dir=job_dir, workers=workers,
                  fanout=fanout)


def optimize_module(module, **kwargs):
    """Weaken ``module``'s barriers under a model-checking oracle.

    Greedily steps memory orders down per-access ladders (SEQ_CST ->
    ACQ_REL/ACQUIRE/RELEASE -> RELAXED) and deletes porter-inserted
    fences, re-checking after each batch that the module's verdict is
    unchanged; rejected weakenings are reverted.  Returns
    ``(optimized_module, OptimizationReport)``.  See
    :func:`repro.opt.optimize_module` for the knobs.
    """
    from repro.opt import optimize_module as _optimize

    return _optimize(module, **kwargs)


__all__ = [
    "AtoMigConfig",
    "PortingLevel",
    "check_module",
    "compile_source",
    "lint_module",
    "optimize_module",
    "port_module",
    "repair_module",
    "run_module",
    "start_service",
]
