"""Weakening-candidate enumeration and mutation primitives.

A *candidate* is one site the optimizer may relax: an SC atomic access
whose order can step down a ladder of weaker orders, or a
porter-inserted explicit fence that can be deleted outright.  Each
candidate walks its ladder one rung per optimizer round; a rung that
the oracle rejects advances to the next *alternative* at the same
strength (RMWs may drop either half of ACQ_REL) and freezes the
candidate when none is left — every remaining rung is strictly weaker
than a rejected one, so it would be rejected too.

Ladders only contain orders the IR verifier accepts (no release loads,
no acquire stores), so an optimized module always re-verifies.
"""

from dataclasses import dataclass, field

from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder

#: Provenance marks identifying accesses a porter strengthened.  The
#: optimizer only relaxes these by default: an access that is SC in the
#: *source* (without any porting mark) is presumed intentional.
PORTER_ACCESS_MARKS = frozenset({
    "annotation", "spin_control", "optimistic_control", "sticky",
    "naive", "polling_control", "barrier_seed", "volatile", "repair",
})

#: Marks identifying porter-inserted (not source-level) fences; only
#: these are deletion candidates — a fence the programmer wrote is
#: kept even when the oracle would tolerate its removal.
PORTER_FENCE_MARKS = frozenset({
    "optimistic", "explicit_ablation", "lasagne", "repair",
})

#: Sentinel "order" for fence-deletion rungs.
DELETE = "delete"

#: Rung ladders per access kind: a tuple of levels, each level a tuple
#: of alternatives tried left to right.  Levels are ordered strongest
#: to weakest; every order in level N+1 is weaker than (or incomparable
#: only to a *sibling* of) every order in level N, which is what makes
#: freeze-on-exhausted-alternatives sound.
LOAD_LADDER = (
    (MemoryOrder.ACQUIRE,),
    (MemoryOrder.RELAXED,),
)
STORE_LADDER = (
    (MemoryOrder.RELEASE,),
    (MemoryOrder.RELAXED,),
)
RMW_LADDER = (
    (MemoryOrder.ACQ_REL,),
    # Either half of ACQ_REL may be droppable on its own (a lock
    # acquire keeps ACQUIRE, a lock release keeps RELEASE).
    (MemoryOrder.ACQUIRE, MemoryOrder.RELEASE),
    (MemoryOrder.RELAXED,),
)
FENCE_LADDER = ((DELETE,),)


@dataclass
class Candidate:
    """One weakenable site and its position on the ladder."""

    instr: object
    #: Stable identity recorded at enumeration time, before any fence
    #: deletion shifts block indices: (function, block_label, index).
    position: tuple
    kind: str  # "load" | "store" | "rmw" | "fence"
    ladder: tuple
    #: Dynamic execution count weight (1 = static).
    weight: int = 1
    #: Order the access carried when enumerated.
    original_order: object = MemoryOrder.SEQ_CST
    #: Order currently committed (== original until a rung is accepted).
    committed: object = MemoryOrder.SEQ_CST
    level: int = 0
    alternative: int = 0
    frozen: bool = False
    #: Accepted rungs, strongest first (the optimize_tour trail).
    history: list = field(default_factory=list)
    #: The most recent proposal the oracle rejected (report fodder).
    last_rejected: object = None

    def proposal(self):
        """The next order to try, or None when the ladder is done."""
        if self.frozen or self.level >= len(self.ladder):
            return None
        return self.ladder[self.level][self.alternative]

    def accept(self):
        """Commit the current proposal and move down a level."""
        order = self.proposal()
        self.history.append(order)
        self.committed = order
        self.level += 1
        self.alternative = 0

    def reject(self):
        """Try the next alternative at this strength, else freeze."""
        self.last_rejected = self.proposal()
        self.alternative += 1
        if self.alternative >= len(self.ladder[self.level]):
            self.frozen = True

    def savings(self, cost_model):
        """Estimated cycles saved by the current proposal."""
        order = self.proposal()
        if order is None:
            return 0
        before = cost_model.access_cost(self.instr, self.committed)
        if order is DELETE:
            after = 0
        else:
            after = cost_model.access_cost(self.instr, order)
        return (before - after) * self.weight

    def describe(self):
        function, block, index = self.position
        final = "deleted" if self.committed is DELETE else (
            self.committed.name.lower()
        )
        return (
            f"{function}:{block}[{index}] {self.kind} "
            f"{self.original_order.name.lower()} -> {final}"
        )


def enumerate_candidates(module, cost_model, counts=None,
                         require_marks=True):
    """List every weakenable site of ``module``.

    Candidates are SC atomic accesses (optionally restricted to those
    carrying porter provenance marks) and porter-inserted fences.
    ``counts`` (position -> dynamic execution count) weights the
    savings estimates; sites that never executed weigh 0 but are still
    candidates — weakening them is free and harmless.  The result is
    sorted by descending estimated first-rung savings, then position,
    so "weaken the most expensive barriers first" is the enumeration
    order itself.
    """
    candidates = []
    for function_name, function in module.functions.items():
        for block in function.blocks:
            for index, instr in enumerate(block.instructions):
                candidate = _classify(
                    instr, (function_name, block.label, index),
                    require_marks,
                )
                if candidate is None:
                    continue
                if counts is not None:
                    candidate.weight = counts.get(candidate.position, 0)
                candidates.append(candidate)
    candidates.sort(
        key=lambda c: (-c.savings(cost_model), c.position)
    )
    return candidates


def _classify(instr, position, require_marks):
    if isinstance(instr, ins.Fence):
        if not instr.marks & PORTER_FENCE_MARKS:
            return None
        return Candidate(
            instr=instr, position=position, kind="fence",
            ladder=FENCE_LADDER, original_order=instr.order,
            committed=instr.order,
        )
    if isinstance(instr, ins.Load):
        kind, ladder = "load", LOAD_LADDER
    elif isinstance(instr, ins.Store):
        kind, ladder = "store", STORE_LADDER
    elif isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
        kind, ladder = "rmw", RMW_LADDER
    else:
        return None
    if instr.order is not MemoryOrder.SEQ_CST:
        return None
    if require_marks and not instr.marks & PORTER_ACCESS_MARKS:
        return None
    return Candidate(
        instr=instr, position=position, kind=kind, ladder=ladder,
        original_order=instr.order, committed=instr.order,
    )


def apply_proposal(candidate):
    """Mutate the module per the candidate's proposal; return an undo.

    Undos must be invoked in reverse application order (LIFO): a fence
    deletion records its index at apply time, which stays valid only
    while later mutations are unwound first.
    """
    order = candidate.proposal()
    instr = candidate.instr
    if order is DELETE:
        block = instr.block
        index = block.instructions.index(instr)
        del block.instructions[index]

        def undo():
            block.instructions.insert(index, instr)
    else:
        previous = instr.order
        instr.order = order

        def undo():
            instr.order = previous
    return undo
