"""Oracle-guided barrier weakening for ported modules.

AtoMig's output is correct but maximally synchronized: every atomized
access is SEQ_CST.  ``repro.opt`` relaxes that output — stepping orders
down per-access ladders and deleting porter-inserted fences — while a
model-checking oracle certifies after every step that the module's
verdict (ok / violation / deadlock) is unchanged.  The result is the
weakest barrier assignment the checker can vouch for, never weaker.

Entry points:

- :func:`optimize_module` — optimize one IR module, returning the
  optimized clone and an :class:`OptimizationReport`.
- :func:`repro.opt.parallel.run_optimize_tasks` — batch harness for
  Table 9 (optimize the whole Table 2 corpus across cores).
"""

from repro.opt.candidates import Candidate, enumerate_candidates
from repro.opt.oracle import Oracle
from repro.opt.report import OptimizationReport
from repro.opt.weaken import optimize_module

__all__ = [
    "Candidate",
    "Oracle",
    "OptimizationReport",
    "enumerate_candidates",
    "optimize_module",
]
