"""Batch harness: optimize many modules across cores (Table 9).

Mirrors :mod:`repro.mc.parallel`: an :class:`OptimizeTask` is a
picklable description of one port-then-optimize job, and
:func:`run_optimize_tasks` fans a batch over the same pool plumbing via
``run_tasks(..., worker=run_optimize_task)``.  Each worker runs its own
greedy loop sequentially — the parallelism that matters for Table 9 is
across corpus rows, not within one module's bisection.

Results are plain dicts (``OptimizationReport.to_dict()``) so they
pickle under every multiprocessing start method.
"""

from dataclasses import dataclass

from repro.mc.parallel import run_tasks


@dataclass(frozen=True)
class OptimizeTask:
    """One optimize job, self-contained and picklable."""

    #: Module name (carried into the report).
    name: str
    #: Mini-C source text (or IR text when ``is_ir``).
    source: str
    model: str = "wmm"
    #: PortingLevel value to port to before optimizing, or None to
    #: optimize the compiled module as-is.
    level: str = "atomig"
    entry: str = "main"
    max_steps: int = 2500
    max_states: int = 400_000
    #: Optional AtoMigConfig for the porting pipeline.
    config: object = None
    is_ir: bool = False
    #: Consider unmarked SC accesses too (hand-written modules).
    require_marks: bool = True
    #: Enable the oracle's static robustness fast path.
    robustness: bool = True
    #: Exploration engine for the oracle's checks; None = default.
    engine: str = None
    #: Seed the weakener from the static fence-repair pass (the
    #: repaired minimal-fence module) instead of the raw port.
    repair_seed: bool = False
    #: Architecture cost-model name ("armv8" / "power"); None keeps the
    #: default model.  Affects cost *reporting* and candidate ranking,
    #: never the oracle's verdicts.
    arch: str = None


def run_optimize_task(task):
    """Compile, port and optimize one task; returns a report dict.

    Top-level (not a closure) so it pickles under every multiprocessing
    start method.
    """
    from repro.api import port_module
    from repro.core.config import PortingLevel
    from repro.core.workers import cached_module
    from repro.opt.weaken import optimize_module
    from repro.vm.costs import cost_model_for

    module = cached_module(task.source, task.name, is_ir=task.is_ir)
    if task.level is not None:
        module, _report = port_module(
            module, PortingLevel(task.level), config=task.config
        )
    cost_model = cost_model_for(task.arch) if task.arch else None
    _optimized, report = optimize_module(
        module, model=task.model, entry=task.entry,
        max_steps=task.max_steps, max_states=task.max_states,
        cost_model=cost_model,
        require_marks=task.require_marks, clone=False,
        robustness=task.robustness, engine=task.engine,
        repair_seed=task.repair_seed,
    )
    return report.to_dict()


def run_optimize_tasks(tasks, jobs=None):
    """Run a batch of optimize tasks; results align with input order."""
    return run_tasks(tasks, jobs=jobs, worker=run_optimize_task)
