"""Oracle-guided barrier weakening (the ``repro.opt`` entry point).

AtoMig deliberately over-synchronizes: every marked access becomes an
SC atomic.  That is what makes it *safe* on millions of lines, and what
makes it trail hand-ported baselines on hot paths.  This module closes
the gap the VSync way — checker-certified relaxation — without giving
up the blanket guarantee: the optimized module provably returns the
same model-checker verdict as the blanket-SC port.

The algorithm is greedy, round-based and batched:

1. Enumerate candidates (SC accesses with porter provenance, and
   porter-inserted fences), ordered by estimated cycle savings from
   :mod:`repro.vm.costs` — the most expensive barriers weaken first.
2. Each round applies one ladder rung per active candidate *in batch*
   and asks the oracle once.  Verdict unchanged: the whole batch
   commits with a single check.  Verdict changed: the batch is
   *bisected* — apply half, check, recurse — isolating the offending
   sites in O(k log n) checks for k rejections instead of O(n).
3. A rejected rung advances to its next alternative (an RMW may keep
   just its acquire or just its release half) or freezes the site;
   every weaker rung would fail too, so freezing is sound.
4. Rounds repeat until no candidate can move, then the result is
   re-verified (IR well-formedness) and the final verdict re-read from
   the oracle's cache.

Reverts are pure undo: a rejected batch restores the exact previous
module state, so the optimizer can never leave a bug behind — the
worst case is the unchanged blanket-SC module.
"""

import time

from repro.ir.verifier import verify_module
from repro.opt.candidates import (
    DELETE,
    apply_proposal,
    enumerate_candidates,
)
from repro.opt.oracle import Oracle
from repro.opt.report import OptimizationReport
from repro.vm.costs import CostModel, estimate_cost


def optimize_module(module, model="wmm", entry="main", max_steps=2500,
                    max_states=400_000, jobs=1, cost_model=None,
                    counts=None, require_marks=True, clone=True,
                    robustness=True, engine=None, repair_seed=False,
                    por=None, macro=None):
    """Weaken ``module``'s barriers as far as the oracle certifies.

    Returns ``(optimized_module, OptimizationReport)``.  The input
    module is cloned (unless ``clone=False``), so ported and optimized
    variants can be compared side by side.

    ``counts`` is an optional ``(function, block, index) -> executed``
    mapping (see ``run_module(record_counts=True)``) that weights the
    candidate order by dynamic execution frequency; without it the
    static cost model decides.  ``jobs > 1`` fans bisection probes
    across the :mod:`repro.mc.parallel` pool.  ``require_marks=False``
    also considers SC accesses without porter provenance marks (for
    hand-written modules).  ``robustness=False`` disables the oracle's
    static fast path (every query explores).

    ``repair_seed=True`` first runs the static fence-repair pass
    (:func:`repro.analysis.repair.repair_module`) on the working module
    so the weakener starts from a *robust* minimal-fence seed instead
    of whatever (possibly non-robust) state it was handed: the oracle's
    baseline then classifies robust, its static fast path answers
    candidate queries without exploration, and the shared analyzer
    graph is reused by both passes.  The repair evidence lands in
    ``report.repair``.
    """
    started = time.perf_counter()
    work = module.clone() if clone else module
    costs = cost_model or CostModel()
    report = OptimizationReport(
        module_name=module.name, model=model,
        dynamic_counts=counts is not None,
    )

    if entry not in work.functions:
        report.notes.append(
            f"no entry function @{entry}; module left unoptimized"
        )
        report.wall_seconds = time.perf_counter() - started
        return work, report

    analyzer = None
    if repair_seed and model != "sc":
        from repro.analysis.repair import repair_module
        from repro.analysis.robustness import RobustnessAnalyzer

        analyzer = RobustnessAnalyzer(work, model=model)
        _, repair_report = repair_module(
            work, model=model, cost_model=costs, clone=False,
            analyzer=analyzer,
        )
        report.repair = repair_report.to_dict()
        if repair_report.rounds:
            report.notes.append(repair_report.summary())

    oracle = Oracle(
        model=model, entry=entry, max_steps=max_steps,
        max_states=max_states, jobs=jobs, robustness=robustness,
        engine=engine, analyzer=analyzer, por=por, macro=macro,
    )
    baseline = oracle.establish(work)
    report.baseline_outcome = baseline.outcome
    report.cost_before = estimate_cost(work, costs, counts).to_dict()

    if baseline.outcome == "truncated":
        report.final_outcome = baseline.outcome
        report.notes.append(
            "baseline exploration truncated: the oracle cannot certify "
            "any weakening; module left unoptimized"
        )
        report.wall_seconds = time.perf_counter() - started
        _fill_counters(report, oracle)
        return work, report

    candidates = enumerate_candidates(
        work, costs, counts=counts, require_marks=require_marks
    )
    report.candidates = len(candidates)

    optimizer = _GreedyWeakener(work, oracle, jobs=jobs)
    while True:
        active = [
            candidate for candidate in candidates
            if candidate.proposal() is not None
        ]
        if not active:
            break
        # Most expensive rungs first, stable on position: the batched
        # check certifies them together, but bisection halves follow
        # this order, so the big wins settle in the fewest checks.
        active.sort(key=lambda c: (-c.savings(costs), c.position))
        report.rounds += 1
        optimizer.settle(active)

    _finalize(report, work, candidates, costs, counts, oracle)
    report.wall_seconds = time.perf_counter() - started
    work.metadata["optimization_report"] = report.to_dict()
    return work, report


class _GreedyWeakener:
    """Batched-bisection settlement over one working module."""

    def __init__(self, module, oracle, jobs=1):
        self.module = module
        self.oracle = oracle
        self.jobs = jobs or 1

    def settle(self, candidates):
        """Certify as many of ``candidates``' proposals as possible.

        Returns the number of accepted proposals.  Applies are undone
        LIFO on rejection, so the module always ends in a state whose
        verdict the oracle has confirmed (or the untouched base).
        """
        if not candidates:
            return 0
        undos = [apply_proposal(c) for c in candidates]
        if self.oracle.matches(self.module):
            for candidate in candidates:
                candidate.accept()
            return len(candidates)
        for undo in reversed(undos):
            undo()
        if len(candidates) == 1:
            candidates[0].reject()
            return 0
        middle = len(candidates) // 2
        left, right = candidates[:middle], candidates[middle:]
        if self.jobs > 1:
            return self._settle_parallel(left, right)
        return self.settle(left) + self.settle(right)

    def _settle_parallel(self, left, right):
        """Probe both bisection halves concurrently against this base."""
        from repro.ir.printer import print_module

        texts = []
        for half in (left, right):
            undos = [apply_proposal(c) for c in half]
            texts.append(print_module(self.module))
            for undo in reversed(undos):
                undo()
        verdicts = self.oracle.probe(texts)
        baseline = self.oracle.baseline_outcome

        if verdicts[0] == baseline:
            # Left is certified against the *current* base: commit it
            # without a re-check.
            for candidate in left:
                apply_proposal(candidate)
                candidate.accept()
            accepted = len(left)
        else:
            accepted = self.settle(left)

        if verdicts[1] == baseline and accepted == 0:
            # The base did not change, so right's probe verdict still
            # holds — commit it check-free as well.
            for candidate in right:
                apply_proposal(candidate)
                candidate.accept()
            return len(right)
        # Base changed (or right failed outright): settle right on top
        # of whatever left committed.
        return accepted + self.settle(right)


def _finalize(report, work, candidates, costs, counts, oracle):
    """Fill per-site entries, re-verify, and close out the report."""
    touched = set()
    for candidate in candidates:
        function, block, index = candidate.position
        if candidate.history:
            touched.add(function)
            after = ("deleted" if candidate.committed is DELETE
                     else candidate.committed.name.lower())
            saved = costs.access_cost(
                candidate.instr, candidate.original_order
            )
            if candidate.committed is not DELETE:
                saved -= costs.access_cost(
                    candidate.instr, candidate.committed
                )
            report.weakened.append({
                "function": function,
                "block": block,
                "index": index,
                "kind": candidate.kind,
                "instr": repr(candidate.instr),
                "before": candidate.original_order.name.lower(),
                "after": after,
                "saved_cycles": saved * candidate.weight,
            })
            if candidate.committed is DELETE:
                report.fences_deleted += 1
            else:
                report.accesses_weakened += 1
        elif candidate.frozen:
            rejected = candidate.last_rejected
            report.frozen.append({
                "function": function,
                "block": block,
                "index": index,
                "kind": candidate.kind,
                "instr": repr(candidate.instr),
                "kept": candidate.original_order.name.lower(),
                "rejected": ("deletion" if rejected is DELETE
                             else rejected.name.lower() if rejected
                             else "?"),
            })
    if touched:
        verify_module(work, functions=touched)
    report.cost_after = estimate_cost(work, costs, counts).to_dict()
    # The final state's verdict is always already cached: every commit
    # was preceded by a check of exactly that state.
    report.final_outcome = oracle.verdict(work)
    _fill_counters(report, oracle)


def _fill_counters(report, oracle):
    counters = oracle.counters()
    report.checks_run = counters["checks_run"]
    report.cache_hits = counters["cache_hits"]
    report.oracle_states = counters["states_total"]
    report.parallel_probes = counters["parallel_probes"]
    report.robustness_checks = counters["robustness_checks"]
    report.robustness_hits = counters["robustness_hits"]
    report.robustness_states_saved = counters["robustness_states_saved"]
    report.baseline_robust = counters["baseline_robust"]
