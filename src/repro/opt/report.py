"""Optimization report: what the barrier optimizer weakened, and proof.

The report is the auditable trail of an ``atomig optimize`` run: the
baseline verdict it preserved, every accepted weakening with its
before/after order, the sites that had to stay strong, how many oracle
checks certified the result, and the estimated cycle savings through
the shared :func:`repro.vm.costs.estimate_cost` path (Table 9's
columns).
"""

from dataclasses import dataclass, field


@dataclass
class OptimizationReport:
    """Statistics collected while optimizing one module."""

    module_name: str = ""
    model: str = "wmm"
    #: Outcome class of the unoptimized module (the verdict preserved).
    baseline_outcome: str = ""
    #: Outcome class after optimization (always == baseline on exit).
    final_outcome: str = ""
    #: Accepted weakenings: one dict per changed site with position,
    #: kind, before/after orders and estimated cycles saved.
    weakened: list = field(default_factory=list)
    #: Sites that could not weaken at all (kept their original order),
    #: with the rung the oracle rejected.
    frozen: list = field(default_factory=list)
    #: Porter-inserted fences deleted.
    fences_deleted: int = 0
    #: Accesses whose order was relaxed (excludes deleted fences).
    accesses_weakened: int = 0
    #: Candidate sites enumerated in total.
    candidates: int = 0
    #: Optimizer rounds (one ladder rung per candidate per round).
    rounds: int = 0
    #: Oracle counters.
    checks_run: int = 0
    cache_hits: int = 0
    oracle_states: int = 0
    parallel_probes: int = 0
    #: Robustness fast path: queries answered statically vs. attempted,
    #: exploration states those hits avoided, and whether the baseline
    #: itself was provably robust (the fast path's precondition).
    robustness_checks: int = 0
    robustness_hits: int = 0
    robustness_states_saved: int = 0
    baseline_robust: bool = False
    #: Static fence-repair evidence when the run seeded from the repair
    #: pass (``repair_seed=True``): a
    #: :class:`repro.analysis.repair.RepairReport` dict, else {}.
    repair: dict = field(default_factory=dict)
    #: Module-level cost estimates (repro.vm.costs.CostEstimate dicts).
    cost_before: dict = field(default_factory=dict)
    cost_after: dict = field(default_factory=dict)
    #: True when dynamic execution counts weighted the candidate order.
    dynamic_counts: bool = False
    wall_seconds: float = 0.0
    notes: list = field(default_factory=list)

    @property
    def barrier_cost_before(self):
        return self.cost_before.get("barriers", 0)

    @property
    def barrier_cost_after(self):
        return self.cost_after.get("barriers", 0)

    @property
    def cycles_saved(self):
        return self.barrier_cost_before - self.barrier_cost_after

    @property
    def verdict_preserved(self):
        return (self.baseline_outcome == self.final_outcome
                and bool(self.baseline_outcome))

    def to_dict(self):
        """JSON-ready structure (``atomig optimize --json`` payload)."""
        return {
            "module": self.module_name,
            "model": self.model,
            "baseline_outcome": self.baseline_outcome,
            "final_outcome": self.final_outcome,
            "verdict_preserved": self.verdict_preserved,
            "weakened": list(self.weakened),
            "frozen": list(self.frozen),
            "fences_deleted": self.fences_deleted,
            "accesses_weakened": self.accesses_weakened,
            "candidates": self.candidates,
            "rounds": self.rounds,
            "checks_run": self.checks_run,
            "cache_hits": self.cache_hits,
            "oracle_states": self.oracle_states,
            "parallel_probes": self.parallel_probes,
            "robustness_checks": self.robustness_checks,
            "robustness_hits": self.robustness_hits,
            "robustness_states_saved": self.robustness_states_saved,
            "baseline_robust": self.baseline_robust,
            "repair": dict(self.repair),
            "cost_before": dict(self.cost_before),
            "cost_after": dict(self.cost_after),
            "barrier_cost_before": self.barrier_cost_before,
            "barrier_cost_after": self.barrier_cost_after,
            "cycles_saved": self.cycles_saved,
            "dynamic_counts": self.dynamic_counts,
            "wall_seconds": self.wall_seconds,
            "notes": list(self.notes),
        }

    def summary(self):
        """Human-readable one-paragraph summary."""
        saved_pct = 0.0
        if self.barrier_cost_before:
            saved_pct = 100.0 * self.cycles_saved / self.barrier_cost_before
        return (
            f"optimize {self.module_name} [{self.model}]: "
            f"{self.accesses_weakened}/{self.candidates} accesses "
            f"weakened, {self.fences_deleted} fences deleted, "
            f"barrier cost {self.barrier_cost_before} -> "
            f"{self.barrier_cost_after} (-{saved_pct:.0f}%), "
            f"{self.checks_run} oracle checks "
            f"({self.cache_hits} cached, {self.robustness_hits} "
            f"robust fast path), verdict "
            f"{self.baseline_outcome}"
            + ("" if self.verdict_preserved else
               f" -> {self.final_outcome} [NOT PRESERVED]")
        )

    def render(self):
        """Multi-line per-site report (what ``atomig optimize`` prints)."""
        lines = [self.summary()]
        for entry in self.weakened:
            lines.append(
                f"  [{entry['kind']:5s}] {entry['function']}:"
                f"{entry['block']}[{entry['index']}] "
                f"{entry['before']} -> {entry['after']}"
                f"  (saves ~{entry['saved_cycles']} cycles)"
            )
        for entry in self.frozen:
            lines.append(
                f"  [{entry['kind']:5s}] {entry['function']}:"
                f"{entry['block']}[{entry['index']}] "
                f"kept {entry['kept']} (oracle rejected "
                f"{entry['rejected']})"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
