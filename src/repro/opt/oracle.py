"""The correctness oracle: model-checker calls the optimizer trusts.

Every weakening is certified by re-running the WMM model checker and
comparing the *outcome class* (ok / violation / deadlock / truncated)
against the baseline verdict of the unoptimized module — Manerkar et
al.'s trailing-sync counterexamples are the cautionary tale for why a
mapping table is not enough; each relaxation is re-verified.

Four mechanisms keep the oracle cheap enough to sit in a greedy loop:

- **Verdict caching**: module states are keyed by a BLAKE2 digest of
  their printed IR prefixed with the oracle's configuration (model,
  entry, bounds), so verdicts can never alias across configurations;
  bisection frequently revisits a configuration (a batch minus its
  rejected half), and a cache hit costs one print instead of one
  exploration.
- **Robustness fast path**: when the baseline module is statically
  robust (no critical cycle with an unenforced delay — see
  :mod:`repro.analysis.robustness`), any candidate that is *still*
  robust provably has the baseline's verdict: both equal their SC
  verdict, and memory orders are inert under SC, so the two SC
  verdicts coincide.  Such queries are answered without exploring a
  single state; non-robust candidates fall back to exploration.
- **Adaptive state budgets**: candidate checks run under a budget
  derived from the baseline exploration size (``baseline_states x
  margin``) instead of the caller's full ``max_states`` — a weakening
  that blows up the state space reads as *truncated*, mismatches the
  baseline outcome, and is reverted without exploring millions of
  states.  The PR-2 reduction machinery (sleep sets, macro-stepping)
  stays on, so each check only pays for the delta the new orders open.
- **Parallel probes**: bisection halves are independent variants of
  the same base module; with ``jobs > 1`` they are printed to IR text
  and fanned across the :mod:`repro.mc.parallel` pool as ``is_ir``
  check tasks.
"""

import hashlib

from repro.ir.printer import print_module
from repro.mc.explorer import check_module
from repro.mc.parallel import CheckTask, run_tasks


class Oracle:
    """Verdict service for one optimization run."""

    #: Candidate checks may explore this many times the baseline's
    #: scheduling decisions before counting as truncated.
    STATE_MARGIN = 64
    #: ... but never less than this floor (tiny baselines would
    #: otherwise starve legitimate weakenings of budget).
    STATE_FLOOR = 20_000

    def __init__(self, model="wmm", entry="main", max_steps=2500,
                 max_states=400_000, reduce=None, jobs=1,
                 robustness=True, engine=None, analyzer=None, por=None,
                 macro=None):
        self.model = model
        self.entry = entry
        self.max_steps = max_steps
        self.max_states = max_states
        self.reduce = reduce
        #: POR backend / macro-stepping for every probe.  Like
        #: ``engine``, deliberately *not* part of the verdict cache key:
        #: all reduction backends are verdict-identical by construction
        #: (the DPOR-vs-sleep identity property suite and the corpus CI
        #: gate check it), so keying on them would only split the cache.
        self.por = por
        self.macro = macro
        self.jobs = jobs or 1
        self.robustness = robustness
        #: Exploration engine override ("inplace"/"clone"); None keeps
        #: the explorer default.  Deliberately *not* part of the verdict
        #: cache key: the engines are verdict-identical by construction
        #: (the engine-equivalence CI gate checks outcome and state
        #: counts on every corpus program).
        self.engine = engine
        self.baseline_outcome = None
        self.baseline_states = 0
        self.baseline_robust = False
        self.budget = max_states
        self.checks_run = 0
        self.cache_hits = 0
        self.states_total = 0
        self.parallel_probes = 0
        self.robustness_checks = 0
        self.robustness_hits = 0
        self._verdicts = {}
        #: An already-built :class:`RobustnessAnalyzer` bound to the
        #: module this oracle will serve (the repair pass hands its
        #: graph over so seeding the weakener costs no rebuild); lazily
        #: built otherwise.
        self._analyzer = analyzer

    # -- baseline ----------------------------------------------------------

    def establish(self, module):
        """Check the unoptimized module; fix the verdict to preserve."""
        result = self._check(module, self.max_states)
        self.baseline_outcome = result.outcome
        self.baseline_states = result.states_explored
        self.budget = min(
            self.max_states,
            max(self.baseline_states * self.STATE_MARGIN,
                self.STATE_FLOOR),
        )
        self._remember(self._digest(print_module(module)),
                       result.outcome)
        if self.robustness and result.outcome != "truncated":
            self.baseline_robust = self._is_robust(module)
        return result

    # -- candidate checks --------------------------------------------------

    def matches(self, module):
        """True when ``module``'s outcome equals the baseline's."""
        return self.verdict(module) == self.baseline_outcome

    def verdict(self, module):
        """Outcome class for ``module``, via the cache when possible."""
        text = print_module(module)
        key = self._digest(text)
        if key in self._verdicts:
            self.cache_hits += 1
            return self._verdicts[key]
        if self._fastpath_ready() and self._is_robust(module):
            # Robust candidate + robust baseline: both verdicts equal
            # their SC verdict, and orders are inert under SC, so the
            # candidate's outcome *is* the baseline outcome.
            self.robustness_hits += 1
            self._remember(key, self.baseline_outcome)
            return self.baseline_outcome
        result = self._check(module, self.budget)
        self._remember(key, result.outcome)
        return result.outcome

    def probe(self, texts):
        """Outcomes for printed-IR variants, fanned across the pool.

        Used by parallel bisection: the variants are independent, so
        with ``jobs > 1`` they check concurrently.  Results come from
        the cache (or the robustness fast path) where possible and are
        cached afterwards.
        """
        keys = [self._digest(text) for text in texts]
        pending = []
        for key, text in zip(keys, texts):
            if key in self._verdicts:
                self.cache_hits += 1
            elif self._fastpath_ready() and self._is_robust_text(text):
                self.robustness_hits += 1
                self._remember(key, self.baseline_outcome)
            else:
                pending.append((key, text))
        if pending:
            tasks = [
                CheckTask(
                    name="opt-probe", source=text, model=self.model,
                    level=None, entry=self.entry,
                    max_steps=self.max_steps, max_states=self.budget,
                    reduce=self.reduce, por=self.por, macro=self.macro,
                    is_ir=True, engine=self.engine,
                )
                for _key, text in pending
            ]
            self.parallel_probes += len(tasks)
            # jobs, not min(jobs, len(tasks)): the pool registry is
            # keyed by worker count, so a constant count means every
            # bisection round — whatever its batch size — reuses the
            # same persistent workers (and their module caches).
            results = run_tasks(tasks, jobs=self.jobs)
            for (key, _text), result in zip(pending, results):
                self.checks_run += 1
                self.states_total += result.states_explored
                self._remember(key, result.outcome)
        return [self._verdicts[key] for key in keys]

    # -- robustness fast path ----------------------------------------------

    def _fastpath_ready(self):
        """Fast-path soundness needs a robust, explored baseline."""
        return (self.robustness and self.baseline_robust
                and self.baseline_outcome is not None)

    def _is_robust(self, module):
        """Static robustness of ``module``, reusing the conflict graph.

        The optimizer mutates one module in place (orders change,
        fences are deleted, but no access appears or disappears), so
        the analyzer's order-independent conflict graph stays valid
        across queries; only the cheap program-order dataflow reruns.
        """
        from repro.analysis.robustness import RobustnessAnalyzer

        self.robustness_checks += 1
        if self.model == "sc":
            return True
        if self._analyzer is None or self._analyzer.module is not module:
            self._analyzer = RobustnessAnalyzer(module, model=self.model)
        return self._analyzer.analyze(max_witnesses=1).robust

    def _is_robust_text(self, text):
        from repro.analysis.robustness import analyze_robustness
        from repro.ir.parser import parse_module

        self.robustness_checks += 1
        if self.model == "sc":
            return True
        return analyze_robustness(
            parse_module(text), model=self.model, max_witnesses=1
        ).robust

    # -- plumbing ----------------------------------------------------------

    def _check(self, module, max_states):
        self.checks_run += 1
        kwargs = {} if self.engine is None else {"engine": self.engine}
        result = check_module(
            module, model=self.model, entry=self.entry,
            max_steps=self.max_steps, max_states=max_states,
            reduce=self.reduce, por=self.por, macro=self.macro, **kwargs,
        )
        self.states_total += result.states_explored
        return result

    def _remember(self, key, outcome):
        self._verdicts[key] = outcome

    def _digest(self, text):
        """Cache key: configuration prefix + printed IR.

        The prefix keys the verdict on everything that can change it —
        model, entry point, and exploration bounds — so a shared or
        on-disk cache can never alias verdicts across configurations.
        The budget component is the *configured* ``max_states`` ceiling,
        not the per-call adaptive budget: the adaptive budget is itself
        a function of (module, config), so including it would only
        split the cache without adding discrimination.  The reduction
        knobs (``reduce``/``por``/``macro``) and the engine are
        excluded for the same reason: every backend/engine combination
        returns the same verdict by construction, so a verdict probed
        under sleep sets is equally valid for a DPOR run.
        """
        prefix = (
            f"{self.model}|{self.entry}|{self.max_steps}|"
            f"{self.max_states}|"
        )
        return hashlib.blake2b(
            prefix.encode() + text.encode(), digest_size=16
        ).digest()

    def counters(self):
        return {
            "checks_run": self.checks_run,
            "cache_hits": self.cache_hits,
            "states_total": self.states_total,
            "parallel_probes": self.parallel_probes,
            "budget": self.budget,
            "robustness_checks": self.robustness_checks,
            "robustness_hits": self.robustness_hits,
            "robustness_states_saved":
                self.robustness_hits * self.baseline_states,
            "baseline_robust": self.baseline_robust,
        }
