"""Instruction-influence analysis (§3.5).

Given a value (typically a loop exit condition), compute the closure of
values and memory accesses that influence it within a region: which
non-local loads feed it, through which local stack slots, and whether an
opaque call is involved.
"""

from dataclasses import dataclass, field

from repro.analysis.memdep import MemoryDependence
from repro.analysis.nonlocal_ import NonLocalInfo, pointer_root
from repro.ir import instructions as ins
from repro.ir.values import Argument, Constant, GlobalVar


@dataclass
class InfluenceResult:
    """What influences a value inside a region."""

    #: Non-local memory reads (loads / RMWs / CAS) in the closure.
    nonlocal_accesses: set = field(default_factory=set)
    #: Loads of function-local stack slots in the closure.
    local_loads: set = field(default_factory=set)
    #: In-region stores to local slots that may feed the value.
    local_stores: set = field(default_factory=set)
    #: True when a call result is part of the closure (opaque).
    has_call: bool = False

    @property
    def has_nonlocal(self):
        return bool(self.nonlocal_accesses) or self.has_call


class InfluenceAnalysis:
    """Influence queries for one function (results are value-closure walks)."""

    def __init__(self, function, nonlocal_info=None, memdep=None):
        self.function = function
        self.nonlocal_info = nonlocal_info or NonLocalInfo(function)
        self.memdep = memdep or MemoryDependence(function)

    def closure(self, value, region):
        """Influence closure of ``value`` scoped to ``region`` blocks."""
        result = InfluenceResult()
        worklist = [value]
        visited = set()
        while worklist:
            current = worklist.pop()
            if id(current) in visited:
                continue
            visited.add(id(current))
            if current is None or isinstance(current, (Constant, Argument)):
                continue
            if isinstance(current, GlobalVar):
                # The *address* of a global is a constant, not a read.
                continue
            if isinstance(current, ins.Load):
                self._visit_load(current, region, result, worklist)
            elif isinstance(current, (ins.Cmpxchg, ins.AtomicRMW)):
                # RMW results read memory like a load does.
                if self.nonlocal_info.is_nonlocal_pointer(current.pointer):
                    result.nonlocal_accesses.add(current)
                worklist.extend(current.operands)
            elif isinstance(current, ins.Call):
                result.has_call = True
                worklist.extend(current.operands)
            elif isinstance(current, ins.Instruction):
                worklist.extend(current.operands)
        return result

    def _visit_load(self, load, region, result, worklist):
        # Address dependencies always count (indirect non-local deps).
        worklist.append(load.pointer)
        if self.nonlocal_info.is_nonlocal_pointer(load.pointer):
            result.nonlocal_accesses.add(load)
            return
        result.local_loads.add(load)
        if load.block in region:
            for store in self.memdep.reaching_stores(load, region):
                if store not in result.local_stores:
                    result.local_stores.add(store)
                    worklist.append(store.value)

    # -- helpers used by the spinloop detector --------------------------------

    def stored_value_is_constant(self, store):
        """True when the store always writes the same value (paper's
        "constant store" exception in Figure 3, Spinloop 2)."""
        return isinstance(store.value, Constant)

    def nonlocal_stores_matching(self, accesses, region):
        """In-region stores that hit the same locations as ``accesses``.

        Matching is by location key (same criterion as alias
        exploration) or by identical pointer root for keyless locations.
        """
        keys = set()
        roots = set()
        for access in accesses:
            key = self.nonlocal_info.location_key(access.accessed_pointer())
            if key is not None:
                keys.add(key)
            roots.add(pointer_root(access.accessed_pointer()))
        matching = set()
        for block in region:
            for instr in block.instructions:
                if not isinstance(instr, (ins.Store, ins.AtomicRMW, ins.Cmpxchg)):
                    continue
                pointer = instr.accessed_pointer()
                if not self.nonlocal_info.is_nonlocal_pointer(pointer):
                    continue
                key = self.nonlocal_info.location_key(pointer)
                if (key is not None and key in keys) or pointer_root(
                    pointer
                ) in roots:
                    matching.add(instr)
        return matching
