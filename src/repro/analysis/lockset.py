"""Interprocedural must-lockset analysis.

Computes, for every instruction in a module, the set of locks that are
*definitely held* when it executes.  This is the reduction argument of
Bouajjani et al. ("Reasoning About TSO Programs Using Reduction and
Abstraction") made usable as a pruning oracle: accesses consistently
protected by the same lock are race-free under any memory model, so
AtoMig's over-approximating atomization can skip them.

Lock identification is idiom-based, matching the corpus (and the code
bases the paper ports):

1. **TAS-edge acquire** — a conditional branch testing the result of a
   ``cmpxchg``/``atomicrmw xchg`` against the free value 0 acquires the
   lock on the success edge.  This covers test-and-set spinlocks
   (``while (cmpxchg(&l, 0, 1) != 0) {}``) as well as trylock shapes.
2. **Store release** — a store of 0 to a known lock location releases
   it; any other write to a lock location conservatively kills it.
3. **Lock-pair name heuristic** (optional) — a function pair named
   ``X…lock`` / ``X…unlock`` where the lock side performs an atomic RMW
   and the unlock side stores is summarized as acquiring/releasing an
   abstract token ``("fnpair", lock_name)``.  Tokens are flagged
   *heuristic*: the race linter reports them with lower confidence and
   the pruning stage ignores them.

Explicit fences are deliberately treated as lockset-neutral: fence-based
synchronization (Peterson, Dekker) provides ordering, not mutual
exclusion, and is left to the spinloop detector.

The analysis is compositional.  Each straight-line region is summarized
as a *transfer* ``(gen, kill, tainted)`` over lock keys with
``out = (in - kill) | gen``; transfers compose sequentially and meet
(must: intersect gens, union kills) at control-flow merges.  Function
summaries are transfers computed bottom-up over the call graph; call
sites apply the callee's summary in place.  Calls whose effect is
unknown (recursion cycles) kill every lock and taint the state, which
under-approximates locksets — the safe direction for pruning.
"""

from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph
from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins
from repro.ir.values import Constant


@dataclass(frozen=True)
class Transfer:
    """Relative lockset effect of a code region: out = (in - kill) | gen."""

    gen: frozenset = frozenset()
    kill: frozenset = frozenset()
    tainted: bool = False

    def apply(self, held):
        return (held - self.kill) | self.gen

    def then(self, other):
        """Sequential composition: ``self`` first, then ``other``."""
        return Transfer(
            gen=frozenset((self.gen - other.kill) | other.gen),
            kill=frozenset(self.kill | other.kill),
            tainted=self.tainted or other.tainted,
        )

    def meet(self, other):
        """Must-meet at a control-flow merge."""
        if other is None:
            return self
        return Transfer(
            gen=frozenset(self.gen & other.gen),
            kill=frozenset(self.kill | other.kill),
            tainted=self.tainted or other.tainted,
        )


IDENTITY = Transfer()


@dataclass
class LockInfo:
    """One discovered lock: its key and where it is acquired/released."""

    key: tuple
    heuristic: bool = False
    #: (function, block label) pairs of acquire edges / summaries.
    acquire_sites: list = field(default_factory=list)
    #: (function, block label) pairs of releasing stores / summaries.
    release_sites: list = field(default_factory=list)

    def describe(self):
        kind, *rest = self.key
        if kind == "fnpair":
            return f"lock function @{rest[0]} (name heuristic)"
        if kind == "global":
            return f"@{rest[0]}"
        if kind == "field":
            return f"{rest[0]}@+{rest[1]}"
        return repr(self.key)


@dataclass
class LocksetResult:
    """Module-wide lockset facts."""

    module: object = None
    #: key -> LockInfo for every discovered lock.
    locks: dict = field(default_factory=dict)
    #: function name -> Transfer summary (entry to return).
    summaries: dict = field(default_factory=dict)
    #: function name -> must-held lockset at entry over all call sites.
    entry_held: dict = field(default_factory=dict)
    #: instruction -> (frozenset of lock keys, tainted flag).
    _held_at: dict = field(default_factory=dict)

    @property
    def lock_keys(self):
        return frozenset(self.locks)

    def structural_keys(self):
        """Lock keys established by the TAS idiom (pruning-grade)."""
        return frozenset(
            key for key, info in self.locks.items() if not info.heuristic
        )

    def lockset_at(self, instr):
        """(held lock keys, tainted) at ``instr``; (∅, True) if unseen."""
        return self._held_at.get(instr, (frozenset(), True))


def compute_locksets(module, callgraph=None, name_heuristic=True, cache=None):
    """Run the analysis on ``module``; returns a :class:`LocksetResult`."""
    if cache is not None:
        callgraph = callgraph or cache.callgraph()
        infos = cache.nonlocal_infos()
    else:
        callgraph = callgraph or CallGraph(module)
        infos = {
            name: NonLocalInfo(function)
            for name, function in module.functions.items()
        }
    result = LocksetResult(module=module)

    _discover_locks(module, infos, result)
    if name_heuristic:
        _discover_lock_pairs(module, result)
    if not result.locks:
        # No locks anywhere: every lockset is empty and untainted.
        for function in module.functions.values():
            for instr in function.instructions():
                result._held_at[instr] = (frozenset(), False)
            result.summaries[function.name] = IDENTITY
            result.entry_held[function.name] = frozenset()
        return result

    _compute_summaries(module, callgraph, infos, result)
    _compute_entry_held(module, callgraph, infos, result)
    _record_per_instruction(module, infos, result)
    return result


# ---------------------------------------------------------------------------
# Phase 1 — lock discovery
# ---------------------------------------------------------------------------


def _acquire_edges(block, info):
    """TAS-edge idiom: ``{successor: lock key}`` acquired on that edge."""
    terminator = block.terminator
    if not isinstance(terminator, ins.CondBr):
        return {}
    cond = terminator.cond
    while isinstance(cond, ins.Cast):
        cond = cond.value
    if not isinstance(cond, ins.BinOp) or cond.op not in ("==", "!="):
        return {}
    left, right = cond.left, cond.right
    if isinstance(left, Constant):
        left, right = right, left
    if not isinstance(right, Constant) or right.value != 0:
        return {}
    while isinstance(left, ins.Cast):
        left = left.value
    if not _is_lock_acquire_rmw(left) or left.block is not block:
        return {}
    key = info.location_key(left.accessed_pointer())
    if key is None:
        return {}
    # The RMW returns the *old* value; old == 0 means the lock was free
    # and the RMW took it.
    success = (
        terminator.true_block if cond.op == "==" else terminator.false_block
    )
    return {success: key}


def _is_lock_acquire_rmw(value):
    """True for RMWs that install a non-zero value when they see 0."""
    if isinstance(value, ins.Cmpxchg):
        return (
            isinstance(value.expected, Constant)
            and value.expected.value == 0
            and not (
                isinstance(value.desired, Constant)
                and value.desired.value == 0
            )
        )
    if isinstance(value, ins.AtomicRMW) and value.op == "xchg":
        return not (
            isinstance(value.value, Constant) and value.value.value == 0
        )
    return False


def _discover_locks(module, infos, result):
    for function in module.functions.values():
        info = infos[function.name]
        for block in function.blocks:
            for successor, key in _acquire_edges(block, info).items():
                lock = result.locks.setdefault(key, LockInfo(key))
                lock.acquire_sites.append((function.name, block.label))
    # Releases: stores of 0 to a discovered lock location.
    for function in module.functions.values():
        info = infos[function.name]
        for block in function.blocks:
            for instr in block.instructions:
                if not isinstance(instr, ins.Store):
                    continue
                key = info.location_key(instr.pointer)
                if key in result.locks and _stores_zero(instr):
                    result.locks[key].release_sites.append(
                        (function.name, block.label)
                    )


def _stores_zero(store):
    return isinstance(store.value, Constant) and store.value.value == 0


def _discover_lock_pairs(module, result):
    """Name-heuristic tokens for lock functions the idioms miss (MCS)."""
    for name, function in module.functions.items():
        if "unlock" not in name:
            continue
        partner = name.replace("unlock", "lock")
        lock_fn = module.functions.get(partner)
        if lock_fn is None:
            return_token = None
        else:
            has_rmw = any(
                isinstance(i, (ins.Cmpxchg, ins.AtomicRMW))
                for i in lock_fn.instructions()
            )
            has_store = any(
                isinstance(i, ins.Store) for i in function.instructions()
            )
            return_token = ("fnpair", partner) if has_rmw and has_store else None
        if return_token is None:
            continue
        info = result.locks.setdefault(
            return_token, LockInfo(return_token, heuristic=True)
        )
        info.heuristic = True
        info.acquire_sites.append((partner, "<summary>"))
        info.release_sites.append((name, "<summary>"))


# ---------------------------------------------------------------------------
# Phase 2 — function summaries (bottom-up) and per-block transfers
# ---------------------------------------------------------------------------


def _instruction_transfer(instr, info, result):
    all_keys = result.lock_keys
    if isinstance(instr, ins.Store):
        key = info.location_key(instr.pointer)
        if key in result.locks:
            return Transfer(kill=frozenset((key,)))
        return IDENTITY
    if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
        key = info.location_key(instr.accessed_pointer())
        if key in result.locks:
            # The RMW itself writes the lock word; the acquire, if any,
            # happens on the success edge of the guarding branch.
            return Transfer(kill=frozenset((key,)))
        return IDENTITY
    if isinstance(instr, ins.Call):
        summary = result.summaries.get(instr.callee.name)
        if summary is None:
            return Transfer(kill=all_keys, tainted=True)
        return summary
    # Fences, thread ops, computation: lockset-neutral.
    return IDENTITY


def _fnpair_token_transfer(function_name, result):
    """Extra gen/kill from the name-heuristic lock-pair tokens."""
    for key, lock in result.locks.items():
        if not lock.heuristic:
            continue
        if any(site[0] == function_name for site in lock.acquire_sites):
            return Transfer(gen=frozenset((key,)))
        if any(site[0] == function_name for site in lock.release_sites):
            return Transfer(kill=frozenset((key,)))
    return IDENTITY


def _block_transfers(function, info, result, upto=None):
    """Transfer of each whole block (or up to instruction ``upto``)."""
    transfers = {}
    for block in function.blocks:
        xfer = IDENTITY
        for instr in block.instructions:
            if instr is upto:
                break
            xfer = xfer.then(_instruction_transfer(instr, info, result))
        transfers[block] = xfer
    return transfers


def _dataflow(function, info, result):
    """Per-block in-transfers (relative to function entry), to fixpoint."""
    body = _block_transfers(function, info, result)
    edge_gens = {}
    for block in function.blocks:
        for successor, key in _acquire_edges(block, info).items():
            edge_gens[(block, successor)] = Transfer(gen=frozenset((key,)))

    in_state = {function.entry: IDENTITY}
    worklist = [function.entry]
    while worklist:
        block = worklist.pop(0)
        out = in_state[block].then(body[block])
        for successor in block.successors():
            via = out
            gen = edge_gens.get((block, successor))
            if gen is not None:
                via = via.then(gen)
            merged = via.meet(in_state.get(successor))
            if merged != in_state.get(successor):
                in_state[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)
    return in_state, body


def _compute_summaries(module, callgraph, infos, result):
    all_keys = result.lock_keys
    recursive = callgraph.recursive_functions()
    for name in recursive:
        result.summaries[name] = Transfer(kill=all_keys, tainted=True)
    for name in callgraph.bottom_up_order():
        if name in result.summaries:
            continue
        function = module.functions[name]
        in_state, body = _dataflow(function, infos[name], result)
        summary = None
        for block in function.blocks:
            if not isinstance(block.terminator, ins.Ret):
                continue
            if block not in in_state:
                continue  # unreachable
            exit_state = in_state[block].then(body[block])
            summary = exit_state.meet(summary)
        if summary is None:
            # No reachable return: callers never resume.
            summary = Transfer(kill=all_keys, tainted=True)
        result.summaries[name] = summary.then(
            _fnpair_token_transfer(name, result)
        )


# ---------------------------------------------------------------------------
# Phase 3 — entry held-sets (top-down over call sites) and per-access facts
# ---------------------------------------------------------------------------


def _roots(module, callgraph):
    roots = {"main"} & set(module.functions)
    roots |= callgraph.thread_entries & set(module.functions)
    roots |= {
        name for name in module.functions if not callgraph.callers[name]
    }
    return roots


def _compute_entry_held(module, callgraph, infos, result):
    all_keys = result.lock_keys
    roots = _roots(module, callgraph)
    held = {
        name: frozenset() if name in roots else all_keys
        for name in module.functions
    }
    # Cache per-function dataflow states once; they do not depend on the
    # caller (transfers are relative to function entry).
    states = {
        name: _dataflow(module.functions[name], infos[name], result)
        for name in module.functions
    }

    changed = True
    while changed:
        changed = False
        for name in module.functions:
            if name in roots:
                continue
            incoming = None
            for site in callgraph.sites_of(name):
                caller = module.functions[site.caller]
                in_state, _body = states[site.caller]
                site_block = caller.block_map()[site.block_label]
                if site_block not in in_state:
                    continue  # call site unreachable from caller entry
                xfer = in_state[site_block]
                for instr in site_block.instructions[: site.index]:
                    xfer = xfer.then(
                        _instruction_transfer(instr, infos[site.caller], result)
                    )
                at_site = xfer.apply(held[site.caller])
                incoming = (
                    at_site if incoming is None else (incoming & at_site)
                )
            new = frozenset() if incoming is None else frozenset(incoming)
            if new != held[name]:
                held[name] = new
                changed = True
    result.entry_held = held
    result._states = states


def _record_per_instruction(module, infos, result):
    for name, function in module.functions.items():
        in_state, _body = result._states[name]
        entry = result.entry_held[name]
        for block in function.blocks:
            if block not in in_state:
                # Unreachable block: nothing is known to be held.
                for instr in block.instructions:
                    result._held_at[instr] = (frozenset(), True)
                continue
            xfer = in_state[block]
            for instr in block.instructions:
                result._held_at[instr] = (
                    frozenset(xfer.apply(entry)), xfer.tainted
                )
                xfer = xfer.then(
                    _instruction_transfer(instr, infos[name], result)
                )
