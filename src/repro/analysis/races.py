"""Static race & portability classification (the ``atomig lint`` engine).

Combines the interprocedural lockset analysis with thread-reachability
and a spawn/join epoch analysis to classify every non-local memory
access in a module:

- ``lock``        — part of a lock implementation (must stay atomic);
- ``protected``   — every concurrent access to the location holds a
                    common lock: race-free under any memory model, so
                    atomization is pure overhead (prunable);
- ``unshared``    — never accessed from two concurrent thread contexts;
- ``read_only``   — shared but never written;
- ``racy``        — concurrent, written, and provably lock-free
                    somewhere: AtoMig must order it;
- ``unknown``     — the analysis gave up (keyless pointer, unknown call
                    effects) and defers to AtoMig's over-approximation;
- ``unreachable`` — dead code (e.g. originals left behind by
                    pre-analysis inlining); not analyzed.

Granularity caveat: locks and data are matched at location-key
granularity, so an *array* of locks protecting an *array* of slots
(the CLHT per-bucket pattern) is treated as one lock/one location.
That assumes the per-element correlation the pattern implies; the
benchmark gate re-verifies pruned modules under WMM to back it up.
"""

import enum
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph
from repro.analysis.lockset import compute_locksets
from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins


class AccessClass(enum.Enum):
    LOCK = "lock"
    PROTECTED = "protected"
    UNSHARED = "unshared"
    READ_ONLY = "read_only"
    RACY = "racy"
    UNKNOWN = "unknown"
    UNREACHABLE = "unreachable"


#: Remediation guidance printed by ``atomig lint`` per class.
REMEDIATION = {
    AccessClass.LOCK: (
        "lock-word access: keep it SC atomic; never pruned"
    ),
    AccessClass.PROTECTED: (
        "consistently lock-protected: race-free on any memory model; "
        "prune_protected exempts it from atomization"
    ),
    AccessClass.UNSHARED: (
        "no concurrent access found: atomization is unnecessary "
        "but harmless"
    ),
    AccessClass.READ_ONLY: "shared read-only data: race-free",
    AccessClass.RACY: (
        "unordered concurrent access: AtoMig atomizes it; consider "
        "C11 atomics or a lock if porting by hand"
    ),
    AccessClass.UNKNOWN: (
        "protection not provable (opaque pointer or unknown call "
        "effects): left to AtoMig's over-approximation"
    ),
    AccessClass.UNREACHABLE: "dead code (often an inlining leftover)",
}


@dataclass
class AccessFinding:
    """One classified memory access, with provenance."""

    function: str
    block_label: str
    source_line: object
    instr: object
    key: tuple
    classification: AccessClass
    #: Locks definitely held at the access (descriptions, sorted).
    lockset: tuple = ()
    #: "structural" when a TAS-idiom lock proves protection,
    #: "heuristic" when only a name-pair token does, else "".
    confidence: str = ""
    #: True when the access runs while other threads may be live.
    concurrent: bool = True

    @property
    def remediation(self):
        text = REMEDIATION[self.classification]
        if self.classification is AccessClass.PROTECTED and (
            self.confidence == "heuristic"
        ):
            text += " (name-heuristic lock: review before relying on it)"
        return text

    def location(self):
        line = f":{self.source_line}" if self.source_line else ""
        return f"@{self.function}/{self.block_label}{line}"


@dataclass
class RaceReport:
    """All findings for one module."""

    module_name: str = ""
    findings: list = field(default_factory=list)
    locks: dict = field(default_factory=dict)
    lockset_result: object = None

    def by_class(self, classification):
        return [f for f in self.findings if f.classification is classification]

    def counts(self):
        out = {}
        for finding in self.findings:
            out[finding.classification.value] = (
                out.get(finding.classification.value, 0) + 1
            )
        return out

    def protected_instructions(self, structural_only=True):
        """Access instructions safe to exempt from atomization."""
        chosen = set()
        for finding in self.by_class(AccessClass.PROTECTED):
            if structural_only and finding.confidence != "structural":
                continue
            chosen.add(finding.instr)
        return chosen


def classify_module(module, lockset_result=None, name_heuristic=True,
                    cache=None):
    """Classify every non-local memory access of ``module``."""
    callgraph = cache.callgraph() if cache is not None else CallGraph(module)
    locks = lockset_result or compute_locksets(
        module, callgraph, name_heuristic=name_heuristic, cache=cache
    )
    report = RaceReport(
        module_name=module.name, locks=locks.locks, lockset_result=locks
    )
    structural = locks.structural_keys()

    live = _live_functions(module, callgraph)
    contexts = _thread_contexts(module, callgraph)
    epochs = _spawn_epochs(module, callgraph)

    # Group non-local accesses by location key.
    accesses = []  # (function, instr, key, concurrent)
    by_key = {}
    for name, function in module.functions.items():
        info = (cache.nonlocal_info(function) if cache is not None
                else NonLocalInfo(function))
        for instr in function.instructions():
            if not instr.is_memory_access():
                continue
            if isinstance(instr, ins.Alloca):
                continue
            pointer = instr.accessed_pointer()
            if pointer is None or not info.is_nonlocal_pointer(pointer):
                continue
            key = info.location_key(pointer)
            concurrent = epochs.get(instr, True)
            entry = (name, instr, key, concurrent)
            accesses.append(entry)
            if key is not None and name in live:
                by_key.setdefault(key, []).append(entry)

    verdicts = _classify_keys(by_key, locks, structural, contexts)

    for name, instr, key, concurrent in accesses:
        if name not in live:
            classification, confidence = AccessClass.UNREACHABLE, ""
        elif key is None:
            classification, confidence = AccessClass.UNKNOWN, ""
        else:
            classification, confidence = verdicts[key]
        held, _tainted = locks.lockset_at(instr)
        lockset = tuple(sorted(
            locks.locks[k].describe() for k in held if k in locks.locks
        ))
        report.findings.append(AccessFinding(
            function=name,
            block_label=instr.block.label if instr.block else "?",
            source_line=instr.source_line,
            instr=instr,
            key=key,
            classification=classification,
            lockset=lockset,
            confidence=confidence,
            concurrent=concurrent,
        ))
    return report


def _classify_keys(by_key, locks, structural, contexts):
    """Per-key verdict: (AccessClass, confidence)."""
    verdicts = {}
    for key, entries in by_key.items():
        if key in locks.locks:
            verdicts[key] = (AccessClass.LOCK, "")
            continue
        concurrent_entries = [e for e in entries if e[3]]
        common = None
        tainted = False
        for _name, instr, _key, _concurrent in concurrent_entries:
            held, instr_tainted = locks.lockset_at(instr)
            tainted = tainted or instr_tainted
            common = held if common is None else (common & held)
        if concurrent_entries and common:
            confidence = "structural" if common & structural else "heuristic"
            verdicts[key] = (AccessClass.PROTECTED, confidence)
            continue
        shared = _is_shared(key, entries, contexts)
        if not concurrent_entries or not shared:
            verdicts[key] = (AccessClass.UNSHARED, "")
        elif not any(
            isinstance(e[1], (ins.Store, ins.Cmpxchg, ins.AtomicRMW))
            for e in entries
        ):
            verdicts[key] = (AccessClass.READ_ONLY, "")
        elif tainted:
            verdicts[key] = (AccessClass.UNKNOWN, "")
        else:
            verdicts[key] = (AccessClass.RACY, "")
    return verdicts


# ---------------------------------------------------------------------------
# Thread structure
# ---------------------------------------------------------------------------


def _reachable(callgraph, root):
    seen = set()
    worklist = [root]
    while worklist:
        name = worklist.pop()
        if name in seen or name not in callgraph.callees:
            continue
        seen.add(name)
        worklist.extend(callgraph.callees[name])
    return seen


def _live_functions(module, callgraph):
    """Functions reachable from main / thread entries (all, if no main)."""
    if "main" not in module.functions:
        return set(module.functions)
    live = set()
    roots = {"main"} | callgraph.thread_entries
    for root in roots:
        live |= _reachable(callgraph, root)
    return live


def _thread_contexts(module, callgraph):
    """(roots_reaching, multiplicity): which thread roots may execute
    each function, and how many thread instances each root stands for.

    ``main`` is one instance; a thread entry is one instance per static
    spawn site (a spawn in a loop still counts once — the must-lockset
    stays sound either way; only sharing may be under-reported for spawn
    loops, which the corpus does not use).
    """
    multiplicity = {}
    if "main" in module.functions:
        multiplicity["main"] = 1
    for site in callgraph.spawn_sites:
        multiplicity[site.callee] = multiplicity.get(site.callee, 0) + 1
    if not multiplicity:
        multiplicity = {
            name: 1 for name in module.functions
            if not callgraph.callers[name]
        }

    roots_reaching = {name: set() for name in module.functions}
    for root in multiplicity:
        for name in _reachable(callgraph, root):
            roots_reaching[name].add(root)
    return roots_reaching, multiplicity


def _is_shared(key, entries, contexts):
    roots_reaching, multiplicity = contexts
    roots = set()
    for name, _instr, _key, _concurrent in entries:
        roots |= roots_reaching.get(name, set())
    return sum(multiplicity.get(root, 0) for root in roots) >= 2


def _spawn_epochs(module, callgraph):
    """instr -> may-be-concurrent flag, via spawn/join counting in roots.

    Only ``main`` (and other spawn-performing roots) get the refined
    treatment; everything else is conservatively concurrent.  The count
    is a [lo, hi] interval per block; calls into functions that may
    spawn push hi to infinity.
    """
    INF = 1 << 20
    spawners = set()
    for site in callgraph.spawn_sites:
        spawners |= {
            name for name in module.functions
            if site.caller in _reachable(callgraph, name)
        }

    flags = {}
    for name, function in module.functions.items():
        has_spawn = any(
            isinstance(i, ins.ThreadCreate) for i in function.instructions()
        )
        if not has_spawn or name in callgraph.thread_entries:
            continue
        intervals = {function.entry: (0, 0)}
        worklist = [function.entry]
        visits = {}
        while worklist:
            block = worklist.pop(0)
            visits[block] = visits.get(block, 0) + 1
            lo, hi = intervals[block]
            for instr in block.instructions:
                if isinstance(instr, ins.ThreadCreate):
                    lo, hi = lo + 1, min(hi + 1, INF)
                elif isinstance(instr, ins.ThreadJoin):
                    lo, hi = max(lo - 1, 0), max(hi - 1, 0)
                elif isinstance(instr, ins.Call) and (
                    instr.callee.name in spawners
                ):
                    hi = INF
            for successor in block.successors():
                old = intervals.get(successor)
                new = (lo, hi) if old is None else (
                    min(old[0], lo), max(old[1], hi)
                )
                if visits.get(successor, 0) > len(function.blocks):
                    new = (new[0], INF)  # widen non-converging loops
                if new != old:
                    intervals[successor] = new
                    if successor not in worklist:
                        worklist.append(successor)
        # Record per-instruction concurrency.
        for block in function.blocks:
            if block not in intervals:
                continue
            lo, hi = intervals[block]
            for instr in block.instructions:
                flags[instr] = hi > 0
                if isinstance(instr, ins.ThreadCreate):
                    lo, hi = lo + 1, min(hi + 1, INF)
                elif isinstance(instr, ins.ThreadJoin):
                    lo, hi = max(lo - 1, 0), max(hi - 1, 0)
                elif isinstance(instr, ins.Call) and (
                    instr.callee.name in spawners
                ):
                    hi = INF
    return flags
