"""Thread-escape analysis over the points-to graph.

A memory location is *thread-shared* only if another thread can obtain
its address: it is a global, it is (reachable from) a ``thread_create``
argument, or a pointer to it is stored inside memory that is itself
thread-shared.  Everything else — stack and heap objects that never
flow into that closure — is *thread-local*, and accesses to it can
never race, no matter what type-based buddy matching says.

This is the soundness argument behind ``alias_mode="points_to"``
pruning (mirroring ``prune_protected``): a sticky buddy whose every
aliased abstract object is thread-local is removed from the atomize
set.  The analysis is conservative in exactly the right direction —
any pointer the points-to solver lost track of has an empty points-to
set and is treated as *shared*.
"""

from repro.ir import instructions as ins


class ThreadEscapeAnalysis:
    """Classify abstract objects as thread-shared or thread-local."""

    def __init__(self, module, pointsto, callgraph=None):
        self.module = module
        self.pointsto = pointsto
        self.callgraph = callgraph
        self.shared = self._compute_shared()

    def _spawn_arguments(self):
        if self.callgraph is not None:
            for site in self.callgraph.spawn_sites:
                if site.instr.arg is not None:
                    yield site.instr.arg
        else:
            for instr in self.module.instructions():
                if isinstance(instr, ins.ThreadCreate) and instr.arg is not None:
                    yield instr.arg

    def _compute_shared(self):
        """Globals, spawn arguments, and everything reachable from them.

        Reachability is over object *contents*: if a shared object holds
        a pointer to another object, that object is shared too — another
        thread can load the pointer and dereference it.
        """
        shared = set()
        worklist = []

        def mark(obj):
            if obj not in shared:
                shared.add(obj)
                worklist.append(obj)

        for obj in self.pointsto.objects:
            if obj.kind == "global":
                mark(obj)
        for arg in self._spawn_arguments():
            for obj in self.pointsto.points_to(arg):
                mark(obj)

        while worklist:
            obj = worklist.pop()
            for reachable in self.pointsto.contents(obj):
                mark(reachable)
        return shared

    def is_shared(self, obj):
        return obj in self.shared

    def is_thread_local(self, obj):
        return obj not in self.shared

    def pointer_is_thread_local(self, pointer):
        """True when *every* object the pointer may target is local.

        An empty points-to set means the solver does not know what the
        pointer targets, so it must be assumed shared.
        """
        targets = self.pointsto.points_to(pointer)
        return bool(targets) and all(
            obj not in self.shared for obj in targets
        )

    def thread_local_objects(self):
        return [obj for obj in self.pointsto.objects if obj not in self.shared]
