"""Non-local memory classification and location keys.

The paper (§3.3): "A memory access is non-local in a function if it may
also be accessed from outside that function; e.g., a global variable, a
function argument passed by reference, or a stack variable whose address
is taken and escapes the function scope."

This module classifies access roots and derives *location keys*, the
hashable identities used by alias exploration (§3.4):

- ``("global", name)`` for direct accesses to a global scalar or to the
  elements of a global array of scalars;
- ``("field", struct_name, slot_offset)`` for struct-field accesses, no
  matter how the struct was reached (type-based matching);
- ``None`` when the location cannot be named statically (e.g. a plain
  ``int*`` argument) — such accesses can still be transformed directly
  but cannot seed buddy propagation.
"""

from repro.ir import instructions as ins
from repro.ir.values import Argument, GlobalVar


def pointer_root(pointer):
    """Walk ``gep``/``cast`` chains back to the base of a pointer."""
    value = pointer
    while True:
        if isinstance(value, ins.Gep):
            value = value.base
        elif isinstance(value, ins.Cast):
            value = value.value
        else:
            return value


def gep_signature(pointer):
    """Type-based key for a pointer, or None when not field-shaped.

    Uses the innermost struct-field step of the ``gep`` chain, so
    ``p->state`` and ``nodes[i].state`` produce the same key — the
    paper's "same type and offsets" criterion applied at field
    granularity.
    """
    value = pointer
    while isinstance(value, (ins.Gep, ins.Cast)):
        if isinstance(value, ins.Cast):
            value = value.value
            continue
        for step in reversed(value.path):
            if step[0] == "field":
                struct_type, field_index = step[1], step[2]
                offset = sum(
                    ftype.size for _, ftype in struct_type.fields[:field_index]
                )
                return ("field", struct_type.name, offset)
        value = value.base
    return None


#: How an alloca's address can leave its function.  ``call`` escapes
#: (address passed to a callee) are the interesting subset: the
#: points-to mode can check whether the callee actually publishes the
#: address, while type-based mode must stay conservative.
ESCAPE_STORED = "stored"
ESCAPE_CALL = "call"
ESCAPE_SPAWN = "spawn"
ESCAPE_RETURNED = "returned"
ESCAPE_ATOMIC = "atomic"


class NonLocalInfo:
    """Per-function escape analysis for allocas plus root classification."""

    def __init__(self, function):
        self.function = function
        #: alloca -> set of ESCAPE_* reasons (empty set: did not escape).
        self.escape_reasons = self._compute_escaped()
        self.escaped = {
            alloca for alloca, reasons in self.escape_reasons.items()
            if reasons
        }

    def _compute_escaped(self):
        """Why each alloca's address may leave the function.

        A pointer value "derives" another through gep/cast.  An alloca
        escapes when any derived pointer is stored *as a value*, passed
        to a call or thread spawn, returned, or used as the desired
        value of an atomic exchange.  Every matching use contributes an
        ESCAPE_* reason; the per-reason breakdown lets the points-to
        mode re-examine call-only escapes interprocedurally.
        """
        derived_from = {}
        for instr in self.function.instructions():
            if isinstance(instr, ins.Gep):
                derived_from.setdefault(instr.base, []).append(instr)
            elif isinstance(instr, ins.Cast):
                derived_from.setdefault(instr.value, []).append(instr)

        escaping_values = {}

        def tag(value, reason):
            escaping_values.setdefault(value, set()).add(reason)

        for instr in self.function.instructions():
            if isinstance(instr, ins.Store):
                tag(instr.value, ESCAPE_STORED)
            elif isinstance(instr, ins.ThreadCreate):
                for operand in instr.operands:
                    tag(operand, ESCAPE_SPAWN)
            elif isinstance(instr, ins.Call):
                for operand in instr.operands:
                    tag(operand, ESCAPE_CALL)
            elif isinstance(instr, ins.Ret) and instr.has_value:
                tag(instr.value, ESCAPE_RETURNED)
            elif isinstance(instr, ins.Cmpxchg):
                tag(instr.desired, ESCAPE_ATOMIC)
            elif isinstance(instr, ins.AtomicRMW):
                tag(instr.value, ESCAPE_ATOMIC)

        reasons = {}
        for instr in self.function.instructions():
            if not isinstance(instr, ins.Alloca):
                continue
            found = reasons.setdefault(instr, set())
            worklist = [instr]
            seen = set()
            while worklist:
                value = worklist.pop()
                if value in seen:
                    continue
                seen.add(value)
                found |= escaping_values.get(value, set())
                worklist.extend(derived_from.get(value, ()))
        return reasons

    def escape_reason(self, alloca):
        """The set of ESCAPE_* reasons for one alloca (empty: local)."""
        return frozenset(self.escape_reasons.get(alloca, ()))

    def call_only_escapes(self):
        """Allocas whose *only* escape route is a call argument.

        These are the accesses the issue's "address-taken locals passed
        to calls" case covers: type-based mode must treat them as
        escaping through the callee (conservative), while points-to
        mode can prove whether the callee actually publishes them.
        """
        return {
            alloca for alloca, reasons in self.escape_reasons.items()
            if reasons and reasons <= {ESCAPE_CALL}
        }

    def is_nonlocal_pointer(self, pointer):
        """True when the pointed-to memory may be accessed by others."""
        root = pointer_root(pointer)
        if isinstance(root, ins.Alloca):
            return root in self.escaped
        if isinstance(root, (GlobalVar, Argument)):
            return True
        # Heap pointers, loaded pointers, call results: all non-local.
        return True

    def location_key(self, pointer):
        """Location key for alias exploration, or None."""
        signature = gep_signature(pointer)
        if signature is not None:
            return signature
        root = pointer_root(pointer)
        if isinstance(root, GlobalVar):
            return ("global", root.name)
        return None


class LocationKeyProvider:
    """Pluggable source of location keys for alias exploration.

    The pipeline picks a provider from ``AtoMigConfig.alias_mode``; all
    providers answer the same two questions — what key identifies the
    memory behind a pointer, and how was that key derived — against a
    shared :class:`repro.analysis.cache.AnalysisCache` so per-function
    analyses are computed once per module.
    """

    mode = None

    def __init__(self, cache):
        self.cache = cache

    def location_key(self, function, pointer):
        raise NotImplementedError

    def key_with_origin(self, function, pointer):
        """(key, origin) — origin names the derivation for provenance."""
        key = self.location_key(function, pointer)
        return key, ("type" if key is not None else "none")


class TypeBasedKeyProvider(LocationKeyProvider):
    """The paper's scheme: type/field signatures and global names only."""

    mode = "type_based"

    def location_key(self, function, pointer):
        return self.cache.nonlocal_info(function).location_key(pointer)
