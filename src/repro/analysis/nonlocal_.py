"""Non-local memory classification and location keys.

The paper (§3.3): "A memory access is non-local in a function if it may
also be accessed from outside that function; e.g., a global variable, a
function argument passed by reference, or a stack variable whose address
is taken and escapes the function scope."

This module classifies access roots and derives *location keys*, the
hashable identities used by alias exploration (§3.4):

- ``("global", name)`` for direct accesses to a global scalar or to the
  elements of a global array of scalars;
- ``("field", struct_name, slot_offset)`` for struct-field accesses, no
  matter how the struct was reached (type-based matching);
- ``None`` when the location cannot be named statically (e.g. a plain
  ``int*`` argument) — such accesses can still be transformed directly
  but cannot seed buddy propagation.
"""

from repro.ir import instructions as ins
from repro.ir.values import Argument, GlobalVar


def pointer_root(pointer):
    """Walk ``gep``/``cast`` chains back to the base of a pointer."""
    value = pointer
    while True:
        if isinstance(value, ins.Gep):
            value = value.base
        elif isinstance(value, ins.Cast):
            value = value.value
        else:
            return value


def gep_signature(pointer):
    """Type-based key for a pointer, or None when not field-shaped.

    Uses the innermost struct-field step of the ``gep`` chain, so
    ``p->state`` and ``nodes[i].state`` produce the same key — the
    paper's "same type and offsets" criterion applied at field
    granularity.
    """
    value = pointer
    while isinstance(value, (ins.Gep, ins.Cast)):
        if isinstance(value, ins.Cast):
            value = value.value
            continue
        for step in reversed(value.path):
            if step[0] == "field":
                struct_type, field_index = step[1], step[2]
                offset = sum(
                    ftype.size for _, ftype in struct_type.fields[:field_index]
                )
                return ("field", struct_type.name, offset)
        value = value.base
    return None


class NonLocalInfo:
    """Per-function escape analysis for allocas plus root classification."""

    def __init__(self, function):
        self.function = function
        self.escaped = self._compute_escaped()

    def _compute_escaped(self):
        """Allocas whose address may leave the function.

        A pointer value "derives" another through gep/cast.  An alloca
        escapes when any derived pointer is stored *as a value*, passed
        to a call or thread spawn, returned, or used as the desired
        value of an atomic exchange.
        """
        derived_from = {}
        for instr in self.function.instructions():
            if isinstance(instr, ins.Gep):
                derived_from.setdefault(instr.base, []).append(instr)
            elif isinstance(instr, ins.Cast):
                derived_from.setdefault(instr.value, []).append(instr)

        escaping_values = set()
        for instr in self.function.instructions():
            if isinstance(instr, ins.Store):
                escaping_values.add(instr.value)
            elif isinstance(instr, (ins.Call, ins.ThreadCreate)):
                escaping_values.update(instr.operands)
            elif isinstance(instr, ins.Ret) and instr.has_value:
                escaping_values.add(instr.value)
            elif isinstance(instr, ins.Cmpxchg):
                escaping_values.add(instr.desired)
            elif isinstance(instr, ins.AtomicRMW):
                escaping_values.add(instr.value)

        escaped = set()
        for instr in self.function.instructions():
            if not isinstance(instr, ins.Alloca):
                continue
            worklist = [instr]
            seen = set()
            while worklist:
                value = worklist.pop()
                if value in seen:
                    continue
                seen.add(value)
                if value in escaping_values:
                    escaped.add(instr)
                    break
                worklist.extend(derived_from.get(value, ()))
        return escaped

    def is_nonlocal_pointer(self, pointer):
        """True when the pointed-to memory may be accessed by others."""
        root = pointer_root(pointer)
        if isinstance(root, ins.Alloca):
            return root in self.escaped
        if isinstance(root, (GlobalVar, Argument)):
            return True
        # Heap pointers, loaded pointers, call results: all non-local.
        return True

    def location_key(self, pointer):
        """Location key for alias exploration, or None."""
        signature = gep_signature(pointer)
        if signature is not None:
            return signature
        root = pointer_root(pointer)
        if isinstance(root, GlobalVar):
            return ("global", root.name)
        return None
