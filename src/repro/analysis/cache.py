"""Shared per-module analysis cache.

Almost every pipeline stage (annotations, spinloops, optimistic loops,
alias exploration, pruning) needs ``NonLocalInfo`` for the functions it
inspects, and before this cache each stage rebuilt it from scratch —
``AccessIndex._build`` alone recomputed it once per index build.  The
cache memoizes the per-function and module-wide analyses for one module
*snapshot*: build it after pre-inlining and thread it through the rest
of the pipeline.  It must never be stored on the module itself
(``Module.clone`` deep-copies metadata, and the cached analyses hold
references into the original IR).
"""


class AnalysisCache:
    """Memoized analyses over one (already-transformed) module."""

    def __init__(self, module):
        self.module = module
        self._nonlocal = {}
        self._callgraph = None
        self._pointsto = None
        self._escape = None
        self._providers = {}
        self._interned = {}

    def intern(self, key):
        """Canonical instance of a location key.

        Location keys are tuples rebuilt independently by every stage;
        interning makes equal keys pointer-identical, so the heavy set
        operations downstream (seed-key unions, buddy-map lookups)
        compare by identity first instead of re-hashing tuple contents.
        """
        if key is None:
            return None
        canonical = self._interned.get(key)
        if canonical is None:
            self._interned[key] = key
            canonical = key
        return canonical

    def nonlocal_info(self, function):
        """Per-function :class:`NonLocalInfo`, computed at most once."""
        info = self._nonlocal.get(function.name)
        if info is None or info.function is not function:
            from repro.analysis.nonlocal_ import NonLocalInfo

            info = NonLocalInfo(function)
            self._nonlocal[function.name] = info
        return info

    def nonlocal_infos(self):
        """name -> NonLocalInfo for every function in the module."""
        return {
            name: self.nonlocal_info(function)
            for name, function in self.module.functions.items()
        }

    def callgraph(self):
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph(self.module)
        return self._callgraph

    def pointsto(self):
        if self._pointsto is None:
            from repro.analysis.pointsto import PointsToAnalysis

            self._pointsto = PointsToAnalysis(self.module)
        return self._pointsto

    def thread_escape(self):
        if self._escape is None:
            from repro.analysis.escape import ThreadEscapeAnalysis

            self._escape = ThreadEscapeAnalysis(
                self.module, self.pointsto(), self.callgraph()
            )
        return self._escape

    def key_provider(self, mode="type_based"):
        """The :class:`LocationKeyProvider` for an alias mode."""
        provider = self._providers.get(mode)
        if provider is None:
            if mode == "type_based":
                from repro.analysis.nonlocal_ import TypeBasedKeyProvider

                provider = TypeBasedKeyProvider(self)
            elif mode == "points_to":
                from repro.analysis.pointsto import PointsToKeyProvider

                provider = PointsToKeyProvider(self)
            else:
                raise ValueError(f"unknown alias mode: {mode!r}")
            self._providers[mode] = provider
        return provider
