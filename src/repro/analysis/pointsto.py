"""Module-wide Andersen-style points-to analysis.

AtoMig deliberately skips real alias analysis (§3.4-3.5) and matches
accesses by type and field offset.  That over-approximates in one
direction (every type-compatible access is a buddy, even of provably
thread-local objects) and under-approximates in another (a plain
``int *`` parameter has no location key at all, so buddy propagation
stops at non-inlined call boundaries).  This module supplies the
missing precision: a flow-insensitive, field-insensitive, inclusion
-based ("Andersen") points-to analysis over the whole IR module.

Abstract objects are allocation sites — one per global, per ``alloca``
and per ``malloc`` — and every pointer-valued IR value becomes a set
variable.  Constraints:

- address-of: ``pts(alloca) ∋ obj``, ``pts(@g) ∋ obj(g)``,
  ``pts(malloc) ∋ obj(site)``;
- copy: ``gep``/``cast`` results include their base's set (field
  *insensitive*: an object is one blob);
- load: ``pts(dst) ⊇ contents(o)`` for every ``o ∈ pts(ptr)``;
- store: ``contents(o) ⊇ pts(src)`` for every ``o ∈ pts(ptr)`` (also
  the ``desired``/``value`` operands of ``cmpxchg``/``atomicrmw``);
- call/spawn: actual arguments flow into formal parameters, returned
  values flow into call results (context-insensitive, so recursion —
  which the pre-inliner skips — is handled by the fixpoint).

The :class:`PointsToKeyProvider` turns the solution into *location
keys* for alias exploration: type-based keys where they exist, and
points-to equivalence classes for pointers that previously had ``None``
keys (pointer arguments, loaded pointers).  A keyless pointer whose
points-to set is exactly one global resolves to that global's own key,
so sticky buddies finally propagate through ``int *`` parameters.
"""

from repro.analysis.nonlocal_ import LocationKeyProvider
from repro.ir import instructions as ins
from repro.ir.values import Constant


class AbstractObject:
    """One allocation site: a global, an ``alloca`` or a ``malloc``."""

    __slots__ = ("kind", "label", "node", "function_name")

    def __init__(self, kind, label, node, function_name=None):
        #: ``"global"``, ``"stack"`` or ``"heap"``.
        self.kind = kind
        #: Stable printable identity (used in keys and reports).
        self.label = label
        #: The defining IR node (GlobalVar / Alloca / Malloc).
        self.node = node
        self.function_name = function_name

    def __repr__(self):
        return f"<obj {self.label}>"


class PointsToAnalysis:
    """Inclusion-constraint points-to solution for one module."""

    def __init__(self, module):
        self.module = module
        #: value -> set(AbstractObject); also AbstractObject -> set(...)
        #: for the *contents* of an object (what pointers stored into it
        #: may reference).
        self._pts = {}
        self._copy_edges = {}
        self._load_edges = {}
        self._store_edges = {}
        self.objects = []
        self._object_of = {}
        self._generate()
        self._solve()

    # -- public queries ----------------------------------------------------

    def points_to(self, value):
        """Abstract objects ``value`` may point to (frozenset)."""
        return frozenset(self._pts.get(value, ()))

    def contents(self, obj):
        """Objects that pointers *stored inside* ``obj`` may reference."""
        return frozenset(self._pts.get(obj, ()))

    def object_for(self, node):
        """The AbstractObject of a GlobalVar / Alloca / Malloc node."""
        return self._object_of.get(node)

    def class_key(self, pointer):
        """Location key derived from the points-to equivalence class.

        ``None`` when the set is empty (a pointer the analysis never
        saw take an address — e.g. one computed from an integer).  A
        singleton set holding a global resolves to that global's own
        ``("global", name)`` key, bridging keyless pointer parameters
        into the existing buddy groups; anything else is keyed by the
        sorted object labels.
        """
        targets = self.points_to(pointer)
        if not targets:
            return None
        if len(targets) == 1:
            only = next(iter(targets))
            if only.kind == "global":
                return ("global", only.node.name)
        return ("pts",) + tuple(sorted(obj.label for obj in targets))

    # -- constraint generation --------------------------------------------

    def _new_object(self, kind, label, node, function_name=None):
        obj = AbstractObject(kind, label, node, function_name)
        self.objects.append(obj)
        self._object_of[node] = obj
        return obj

    def _generate(self):
        for gvar in self.module.globals.values():
            obj = self._new_object("global", f"@{gvar.name}", gvar)
            self._seed(gvar, obj)

        for function in self.module.functions.values():
            stack_seq = 0
            heap_seq = 0
            for instr in function.instructions():
                if isinstance(instr, ins.Alloca):
                    name = instr.name or f"#{stack_seq}"
                    stack_seq += 1
                    obj = self._new_object(
                        "stack", f"{function.name}:%{name}", instr,
                        function.name,
                    )
                    self._seed(instr, obj)
                elif isinstance(instr, ins.Malloc):
                    obj = self._new_object(
                        "heap", f"{function.name}:malloc#{heap_seq}", instr,
                        function.name,
                    )
                    heap_seq += 1
                    self._seed(instr, obj)
                elif isinstance(instr, ins.Gep):
                    self._copy(instr.base, instr)
                elif isinstance(instr, ins.Cast):
                    self._copy(instr.value, instr)
                elif isinstance(instr, ins.BinOp):
                    # Pointer arithmetic folded into a binop (addresses
                    # cast to int and back): stay sound by letting both
                    # sides flow through.  Comparisons produce booleans,
                    # never dereferenced, so the pollution is harmless.
                    if instr.op in ins.BinOp.ARITH:
                        self._copy(instr.left, instr)
                        self._copy(instr.right, instr)
                elif isinstance(instr, ins.Load):
                    self._load(instr.pointer, instr)
                elif isinstance(instr, ins.Store):
                    self._store(instr.value, instr.pointer)
                elif isinstance(instr, ins.Cmpxchg):
                    self._store(instr.desired, instr.pointer)
                    self._load(instr.pointer, instr)
                elif isinstance(instr, ins.AtomicRMW):
                    self._store(instr.value, instr.pointer)
                    self._load(instr.pointer, instr)
                elif isinstance(instr, ins.Call):
                    callee = self.module.functions.get(instr.callee.name)
                    if callee is not None:
                        self._bind_call(callee, instr.args, instr)
                elif isinstance(instr, ins.ThreadCreate):
                    callee = self.module.functions.get(instr.callee.name)
                    if callee is not None and instr.arg is not None:
                        self._bind_call(callee, [instr.arg], None)

    def _bind_call(self, callee, actuals, result):
        for formal, actual in zip(callee.arguments, actuals):
            self._copy(actual, formal)
        if result is not None:
            for instr in callee.instructions():
                if isinstance(instr, ins.Ret) and instr.has_value:
                    self._copy(instr.value, result)

    def _seed(self, value, obj):
        self._pts.setdefault(value, set()).add(obj)

    def _copy(self, src, dst):
        if isinstance(src, Constant) or src is None:
            return
        self._copy_edges.setdefault(src, set()).add(dst)

    def _load(self, pointer, dst):
        self._load_edges.setdefault(pointer, set()).add(dst)

    def _store(self, src, pointer):
        if isinstance(src, Constant) or src is None:
            return
        self._store_edges.setdefault(pointer, set()).add(src)

    # -- worklist solver ---------------------------------------------------

    def _solve(self):
        worklist = list(self._pts)
        queued = set(map(id, worklist))

        def push(node):
            if id(node) not in queued:
                queued.add(id(node))
                worklist.append(node)

        def add_copy(src, dst):
            edges = self._copy_edges.setdefault(src, set())
            if dst not in edges:
                edges.add(dst)
                if self._pts.get(src):
                    push(src)

        while worklist:
            node = worklist.pop()
            queued.discard(id(node))
            pts = self._pts.get(node)
            if not pts:
                continue
            # Complex constraints materialize into copy edges.
            for dst in self._load_edges.get(node, ()):
                for obj in pts:
                    add_copy(obj, dst)
            for src in self._store_edges.get(node, ()):
                for obj in pts:
                    add_copy(src, obj)
            # Propagate along copy edges.
            for dst in self._copy_edges.get(node, ()):
                target = self._pts.setdefault(dst, set())
                before = len(target)
                target |= pts
                if len(target) != before:
                    push(dst)


class PointsToKeyProvider(LocationKeyProvider):
    """Location keys refined by the points-to equivalence classes.

    Type-based keys win when they exist (they are field-granular, the
    points-to classes are not); pointers that are keyless under the
    type-based scheme fall back to their points-to class.
    """

    mode = "points_to"

    def __init__(self, cache):
        super().__init__(cache)
        self.pointsto = cache.pointsto()

    def location_key(self, function, pointer):
        key, _origin = self.key_with_origin(function, pointer)
        return key

    def key_with_origin(self, function, pointer):
        """(key, origin) where origin explains how the key was derived.

        origin is ``"type"`` for the classic type-based key,
        ``"pts_global"`` when a keyless pointer resolved to a single
        global, ``"pts_class"`` for a points-to equivalence class and
        ``"none"`` when even the points-to set is empty.
        """
        type_key = self.cache.nonlocal_info(function).location_key(pointer)
        if type_key is not None:
            return type_key, "type"
        key = self.pointsto.class_key(pointer)
        if key is None:
            return None, "none"
        origin = "pts_global" if key[0] == "global" else "pts_class"
        return key, origin

    def aliased_objects(self, pointer):
        """Abstract objects a pointer may target (for reports/pruning)."""
        return self.pointsto.points_to(pointer)
