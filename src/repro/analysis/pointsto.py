"""Module-wide Andersen-style points-to analysis.

AtoMig deliberately skips real alias analysis (§3.4-3.5) and matches
accesses by type and field offset.  That over-approximates in one
direction (every type-compatible access is a buddy, even of provably
thread-local objects) and under-approximates in another (a plain
``int *`` parameter has no location key at all, so buddy propagation
stops at non-inlined call boundaries).  This module supplies the
missing precision: a flow-insensitive, field-insensitive, inclusion
-based ("Andersen") points-to analysis over the whole IR module.

Abstract objects are allocation sites — one per global, per ``alloca``
and per ``malloc`` — and every pointer-valued IR value becomes a set
variable.  Constraints:

- address-of: ``pts(alloca) ∋ obj``, ``pts(@g) ∋ obj(g)``,
  ``pts(malloc) ∋ obj(site)``;
- copy: ``gep``/``cast`` results include their base's set (field
  *insensitive*: an object is one blob);
- load: ``pts(dst) ⊇ contents(o)`` for every ``o ∈ pts(ptr)``;
- store: ``contents(o) ⊇ pts(src)`` for every ``o ∈ pts(ptr)`` (also
  the ``desired``/``value`` operands of ``cmpxchg``/``atomicrmw``);
- call/spawn: actual arguments flow into formal parameters, returned
  values flow into call results (context-insensitive, so recursion —
  which the pre-inliner skips — is handled by the fixpoint).

The :class:`PointsToKeyProvider` turns the solution into *location
keys* for alias exploration: type-based keys where they exist, and
points-to equivalence classes for pointers that previously had ``None``
keys (pointer arguments, loaded pointers).  A keyless pointer whose
points-to set is exactly one global resolves to that global's own key,
so sticky buddies finally propagate through ``int *`` parameters.
"""

from repro.analysis.nonlocal_ import LocationKeyProvider
from repro.ir import instructions as ins
from repro.ir.values import Constant


class AbstractObject:
    """One allocation site: a global, an ``alloca`` or a ``malloc``."""

    __slots__ = ("kind", "label", "node", "function_name")

    def __init__(self, kind, label, node, function_name=None):
        #: ``"global"``, ``"stack"`` or ``"heap"``.
        self.kind = kind
        #: Stable printable identity (used in keys and reports).
        self.label = label
        #: The defining IR node (GlobalVar / Alloca / Malloc).
        self.node = node
        self.function_name = function_name

    def __repr__(self):
        return f"<obj {self.label}>"


class PointsToAnalysis:
    """Inclusion-constraint points-to solution for one module.

    Two interchangeable solvers compute the same (unique) least
    solution:

    - ``solver="scc"`` (default): collapses copy cycles into single
      representatives (Tarjan SCC + union-find) and propagates only
      the *difference* — objects a successor has not seen yet — along
      each edge.  Copy cycles are common in real constraint graphs
      (recursive calls bind actuals and formals in both directions,
      pointers round-trip through globals and load/store pairs), and
      the basic solver re-propagates full sets around them until they
      stabilize.
    - ``solver="basic"``: the original full-set worklist, kept as the
      reference implementation for equivalence tests.

    Inclusion constraints have a unique least fixpoint, so the choice
    of solver never changes ``points_to``/``class_key`` results — only
    how fast they are reached.
    """

    def __init__(self, module, solver="scc"):
        if solver not in ("scc", "basic"):
            raise ValueError(f"unknown points-to solver: {solver!r}")
        self.module = module
        self.solver = solver
        #: value -> set(AbstractObject); also AbstractObject -> set(...)
        #: for the *contents* of an object (what pointers stored into it
        #: may reference).
        self._pts = {}
        self._copy_edges = {}
        self._load_edges = {}
        self._store_edges = {}
        self.objects = []
        self._object_of = {}
        #: union-find parent map for collapsed copy cycles (empty for
        #: the basic solver: every node represents itself).
        self._parent = {}
        #: solver work counters (for profiling / tests).
        self.stats = {"sccs_collapsed": 0, "nodes_merged": 0, "rounds": 0}
        self._generate()
        if solver == "basic":
            self._solve_basic()
        else:
            self._solve_scc()

    # -- public queries ----------------------------------------------------

    def points_to(self, value):
        """Abstract objects ``value`` may point to (frozenset)."""
        return frozenset(self._pts.get(self._find(value), ()))

    def contents(self, obj):
        """Objects that pointers *stored inside* ``obj`` may reference."""
        return frozenset(self._pts.get(self._find(obj), ()))

    def object_for(self, node):
        """The AbstractObject of a GlobalVar / Alloca / Malloc node."""
        return self._object_of.get(node)

    def class_key(self, pointer):
        """Location key derived from the points-to equivalence class.

        ``None`` when the set is empty (a pointer the analysis never
        saw take an address — e.g. one computed from an integer).  A
        singleton set holding a global resolves to that global's own
        ``("global", name)`` key, bridging keyless pointer parameters
        into the existing buddy groups; anything else is keyed by the
        sorted object labels.
        """
        targets = self.points_to(pointer)
        if not targets:
            return None
        if len(targets) == 1:
            only = next(iter(targets))
            if only.kind == "global":
                return ("global", only.node.name)
        return ("pts",) + tuple(sorted(obj.label for obj in targets))

    # -- constraint generation --------------------------------------------

    def _new_object(self, kind, label, node, function_name=None):
        obj = AbstractObject(kind, label, node, function_name)
        self.objects.append(obj)
        self._object_of[node] = obj
        return obj

    def _generate(self):
        for gvar in self.module.globals.values():
            obj = self._new_object("global", f"@{gvar.name}", gvar)
            self._seed(gvar, obj)

        for function in self.module.functions.values():
            stack_seq = 0
            heap_seq = 0
            for instr in function.instructions():
                if isinstance(instr, ins.Alloca):
                    name = instr.name or f"#{stack_seq}"
                    stack_seq += 1
                    obj = self._new_object(
                        "stack", f"{function.name}:%{name}", instr,
                        function.name,
                    )
                    self._seed(instr, obj)
                elif isinstance(instr, ins.Malloc):
                    obj = self._new_object(
                        "heap", f"{function.name}:malloc#{heap_seq}", instr,
                        function.name,
                    )
                    heap_seq += 1
                    self._seed(instr, obj)
                elif isinstance(instr, ins.Gep):
                    self._copy(instr.base, instr)
                elif isinstance(instr, ins.Cast):
                    self._copy(instr.value, instr)
                elif isinstance(instr, ins.BinOp):
                    # Pointer arithmetic folded into a binop (addresses
                    # cast to int and back): stay sound by letting both
                    # sides flow through.  Comparisons produce booleans,
                    # never dereferenced, so the pollution is harmless.
                    if instr.op in ins.BinOp.ARITH:
                        self._copy(instr.left, instr)
                        self._copy(instr.right, instr)
                elif isinstance(instr, ins.Load):
                    self._load(instr.pointer, instr)
                elif isinstance(instr, ins.Store):
                    self._store(instr.value, instr.pointer)
                elif isinstance(instr, ins.Cmpxchg):
                    self._store(instr.desired, instr.pointer)
                    self._load(instr.pointer, instr)
                elif isinstance(instr, ins.AtomicRMW):
                    self._store(instr.value, instr.pointer)
                    self._load(instr.pointer, instr)
                elif isinstance(instr, ins.Call):
                    callee = self.module.functions.get(instr.callee.name)
                    if callee is not None:
                        self._bind_call(callee, instr.args, instr)
                elif isinstance(instr, ins.ThreadCreate):
                    callee = self.module.functions.get(instr.callee.name)
                    if callee is not None and instr.arg is not None:
                        self._bind_call(callee, [instr.arg], None)

    def _bind_call(self, callee, actuals, result):
        for formal, actual in zip(callee.arguments, actuals):
            self._copy(actual, formal)
        if result is not None:
            for instr in callee.instructions():
                if isinstance(instr, ins.Ret) and instr.has_value:
                    self._copy(instr.value, result)

    def _seed(self, value, obj):
        self._pts.setdefault(value, set()).add(obj)

    def _copy(self, src, dst):
        if isinstance(src, Constant) or src is None:
            return
        self._copy_edges.setdefault(src, set()).add(dst)

    def _load(self, pointer, dst):
        self._load_edges.setdefault(pointer, set()).add(dst)

    def _store(self, src, pointer):
        if isinstance(src, Constant) or src is None:
            return
        self._store_edges.setdefault(pointer, set()).add(src)

    # -- basic worklist solver (reference implementation) ------------------

    def _solve_basic(self):
        worklist = list(self._pts)
        queued = set(map(id, worklist))

        def push(node):
            if id(node) not in queued:
                queued.add(id(node))
                worklist.append(node)

        def add_copy(src, dst):
            edges = self._copy_edges.setdefault(src, set())
            if dst not in edges:
                edges.add(dst)
                if self._pts.get(src):
                    push(src)

        while worklist:
            self.stats["rounds"] += 1
            node = worklist.pop()
            queued.discard(id(node))
            pts = self._pts.get(node)
            if not pts:
                continue
            # Complex constraints materialize into copy edges.
            for dst in self._load_edges.get(node, ()):
                for obj in pts:
                    add_copy(obj, dst)
            for src in self._store_edges.get(node, ()):
                for obj in pts:
                    add_copy(src, obj)
            # Propagate along copy edges.
            for dst in self._copy_edges.get(node, ()):
                target = self._pts.setdefault(dst, set())
                before = len(target)
                target |= pts
                if len(target) != before:
                    push(dst)

    # -- SCC-collapsing difference-propagation solver ----------------------

    def _find(self, node):
        """Union-find lookup with path compression."""
        root = node
        parent = self._parent.get(root)
        while parent is not None:
            root = parent
            parent = self._parent.get(root)
        while node is not root:
            next_node = self._parent[node]
            if next_node is not root:
                self._parent[node] = root
            node = next_node
        return root

    def _solve_scc(self):
        """Worklist solver: Tarjan cycle collapsing + delta propagation.

        Nodes in a copy cycle provably share one points-to set, so each
        strongly connected component is merged into a representative.
        Along the remaining (acyclic between collapses) edges only the
        *delta* — objects the successor has not absorbed yet — flows.
        Load/store constraints materialize new copy edges during the
        solve; those can close new cycles, so when the worklist drains
        after growing the graph, the collapse runs again.
        """
        pts = self._pts
        delta = {node: set(objs) for node, objs in pts.items()}
        worklist = list(pts)
        queued = set(map(id, worklist))
        self._grown = 0

        def push(node):
            if id(node) not in queued:
                queued.add(id(node))
                worklist.append(node)

        def add_copy(src, dst):
            src = self._find(src)
            dst = self._find(dst)
            if src is dst:
                return
            edges = self._copy_edges.setdefault(src, set())
            if dst in edges:
                return
            edges.add(dst)
            self._grown += 1
            source_set = pts.get(src)
            if source_set:
                target = pts.setdefault(dst, set())
                news = source_set - target
                if news:
                    target |= news
                    delta.setdefault(dst, set()).update(news)
                    push(dst)

        # Offline collapse first: cycles from recursion and mutual
        # copies exist before any propagation happens.
        self._collapse(push, delta)

        while worklist:
            self.stats["rounds"] += 1
            node = worklist.pop()
            queued.discard(id(node))
            if self._find(node) is not node:
                continue  # merged away; its delta moved to the rep
            d = delta.get(node)
            if d:
                delta[node] = set()
                for dst in self._load_edges.get(node, ()):
                    for obj in d:
                        add_copy(obj, dst)
                for src in self._store_edges.get(node, ()):
                    for obj in d:
                        add_copy(src, obj)
                for dst in list(self._copy_edges.get(node, ())):
                    dst_rep = self._find(dst)
                    if dst_rep is node:
                        continue
                    target = pts.setdefault(dst_rep, set())
                    news = d - target
                    if news:
                        target |= news
                        delta.setdefault(dst_rep, set()).update(news)
                        push(dst_rep)
            if not worklist and self._grown:
                self._collapse(push, delta)

    def _collapse(self, push, delta):
        """Collapse every multi-node SCC of the copy graph (Tarjan)."""
        self._grown = 0
        index = {}
        low = {}
        onstack = set()
        stack = []
        counter = 0
        merged = 0

        def successors(node):
            out = self._copy_edges.get(node)
            if not out:
                return []
            result = []
            seen = set()
            for dst in out:
                rep = self._find(dst)
                if rep is node or id(rep) in seen:
                    continue
                seen.add(id(rep))
                result.append(rep)
            return result

        roots = []
        seen_roots = set()
        for node in list(self._copy_edges):
            rep = self._find(node)
            if id(rep) not in seen_roots:
                seen_roots.add(id(rep))
                roots.append(rep)

        for root in roots:
            if id(root) in index:
                continue
            index[id(root)] = low[id(root)] = counter
            counter += 1
            stack.append(root)
            onstack.add(id(root))
            frames = [(root, iter(successors(root)))]
            while frames:
                node, it = frames[-1]
                advanced = False
                for succ in it:
                    if id(succ) not in index:
                        index[id(succ)] = low[id(succ)] = counter
                        counter += 1
                        stack.append(succ)
                        onstack.add(id(succ))
                        frames.append((succ, iter(successors(succ))))
                        advanced = True
                        break
                    if id(succ) in onstack:
                        low[id(node)] = min(low[id(node)], index[id(succ)])
                if advanced:
                    continue
                frames.pop()
                if low[id(node)] == index[id(node)]:
                    component = []
                    while True:
                        member = stack.pop()
                        onstack.discard(id(member))
                        component.append(member)
                        if member is node:
                            break
                    if len(component) > 1:
                        self._merge_component(component, push, delta)
                        merged += 1
                if frames:
                    parent, _ = frames[-1]
                    low[id(parent)] = min(low[id(parent)], low[id(node)])
        self.stats["sccs_collapsed"] += merged
        return merged > 0

    def _merge_component(self, component, push, delta):
        """Union one SCC into ``component[0]``; re-propagate its set."""
        rep = component[0]
        merged_pts = self._pts.setdefault(rep, set())
        for node in component[1:]:
            self._parent[node] = rep
            merged_pts.update(self._pts.pop(node, ()))
            delta.pop(node, None)
            for edges in (
                self._copy_edges, self._load_edges, self._store_edges
            ):
                moved = edges.pop(node, None)
                if moved:
                    edges.setdefault(rep, set()).update(moved)
            self.stats["nodes_merged"] += 1
        if merged_pts:
            # Conservative restart for the merged node: its whole set
            # counts as fresh so every successor (old and newly
            # inherited) absorbs it.
            delta[rep] = set(merged_pts)
            push(rep)


class PointsToKeyProvider(LocationKeyProvider):
    """Location keys refined by the points-to equivalence classes.

    Type-based keys win when they exist (they are field-granular, the
    points-to classes are not); pointers that are keyless under the
    type-based scheme fall back to their points-to class.
    """

    mode = "points_to"

    def __init__(self, cache):
        super().__init__(cache)
        self.pointsto = cache.pointsto()

    def location_key(self, function, pointer):
        key, _origin = self.key_with_origin(function, pointer)
        return key

    def key_with_origin(self, function, pointer):
        """(key, origin) where origin explains how the key was derived.

        origin is ``"type"`` for the classic type-based key,
        ``"pts_global"`` when a keyless pointer resolved to a single
        global, ``"pts_class"`` for a points-to equivalence class and
        ``"none"`` when even the points-to set is empty.
        """
        type_key = self.cache.nonlocal_info(function).location_key(pointer)
        if type_key is not None:
            return type_key, "type"
        key = self.pointsto.class_key(pointer)
        if key is None:
            return None, "none"
        origin = "pts_global" if key[0] == "global" else "pts_class"
        return key, origin

    def aliased_objects(self, pointer):
        """Abstract objects a pointer may target (for reports/pruning)."""
        return self.pointsto.points_to(pointer)
