"""Witness-guided static fence repair (min-cost critical-cycle breaking).

Turns the robustness analyzer's *classification* into a *fix*: when a
module is non-robust, enumerate all critical cycles (bounded — see
:meth:`RobustnessAnalyzer.enumerate_critical_cycles`), then make it
robust by inserting fences and strengthening memory orders at the
cheapest set of program points.

The analyzer's criterion makes the optimization problem cleaner than
generic cycle hitting: a module is non-robust iff some **delayable**
pair closes a cycle, and the cycle's other edges (conflicts, po paths)
are order-independent, so repairing them cannot kill the cycle — only
making the delay pair itself non-delayable can.  "Break every cycle"
therefore reduces to **covering every culprit pair** (delayable pair
with at least one cycle) by repair actions:

- ``strengthen`` — upgrade an endpoint's memory order: acquire on the
  a-side load / RMW read half, release on the b-side store / RMW write
  half, SC completion when the partner is already SC (wmm), or SC on a
  buffered plain store (tso, drains the store buffer);
- ``strengthen_pair`` — lift *both* endpoints to SEQ_CST at once: the
  only merge-based fix for wmm store->load (SB-shaped) pairs, where
  neither an acquire (a is a store) nor a release (b is a load) can
  apply; an SC store + SC load is how a blanket-SC port covers the
  same pair, and it is far cheaper than a full fence on both cost
  models;
- ``fence_after`` a's instruction / ``fence_before`` b's — a fence in
  the slot adjacent to an endpoint crosses *every* path out of (into)
  it, so it covers every culprit pair sharing that endpoint.

One action can cover many pairs, so this is weighted set cover: solved
greedily, then exactly by branch-and-bound when the instance is small
(the common case), with the proven bound reported either way.  Costs
come from the per-architecture tables in :mod:`repro.vm.costs`, so the
cheapest repair differs by machine: Armv8's near-free LDAR favors
acquire loads, Power's lwsync/hwsync weights shift the optimum.

Coverage is computed by *simulating* the delayability predicate under
the hypothetical order change, so it is exact per pair; an action may
additionally close other pairs' open paths (a fence drains everything
crossing it) — that bonus is not modeled, only rediscovered by the
fixed-point loop, which re-enumerates and re-solves until the analyzer
reports no culprits (one round suffices in practice because endpoint
coverage is exact; ``max_rounds`` is a safety net).

Soundness: every action only *restricts* executions (fences and
stronger orders are inert under SC), so the SC verdict is unchanged;
the repaired module re-classifies robust, hence its weak-model verdict
provably equals that unchanged SC verdict — checked two ways by the
benchmark gates (0-state ``verdict_source="robustness"`` verify, and
an A/B model-checker comparison on the corpus).
"""

import time
from dataclasses import dataclass, field

from repro.analysis.robustness import (
    RobustnessAnalyzer,
    _instruction_positions,
)
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.vm.costs import cost_model_for, estimate_cost

#: Mark carried by every repair-inserted fence and strengthened access:
#: the weakening optimizer enumerates marked sites, so a repaired
#: module remains a valid (and much cheaper) starting point for it.
REPAIR_MARK = "repair"

#: Exact branch-and-bound is attempted only under these instance sizes;
#: larger instances keep the greedy cover and report a dual lower bound.
EXACT_MAX_PAIRS = 20
EXACT_MAX_ACTIONS = 24
EXACT_NODE_BUDGET = 200_000


class _Action:
    """One candidate repair during solving (pre-serialization)."""

    __slots__ = ("kind", "targets", "cost", "covers", "sort_key")

    def __init__(self, kind, targets, cost, sort_key):
        #: strengthen | strengthen_pair | fence_after | fence_before
        self.kind = kind
        #: ``[(instr, node, to_order)]`` — one entry for fences and
        #: single strengthenings, two for ``strengthen_pair``;
        #: ``to_order`` is None for fences.
        self.targets = targets
        self.cost = cost
        self.covers = set()         # indexes into the culprit-pair list
        self.sort_key = sort_key

    @property
    def instr(self):
        return self.targets[0][0]

    def changes(self):
        """The hypothetical order map this action applies."""
        return {instr: to_order for instr, _node, to_order in self.targets
                if to_order is not None}


@dataclass
class RepairAction:
    """One applied repair, with provenance (the report's vocabulary)."""

    #: ``strengthen`` | ``fence_after`` | ``fence_before``.
    kind: str = "strengthen"
    function: str = ""
    block: str = ""
    #: Index of the anchor instruction *at the start of its round* —
    #: :meth:`RepairReport.apply` replays rounds in order, fences within
    #: a block in descending slot order, so indices stay valid.
    index: int = 0
    instr: str = ""
    from_order: str = ""
    to_order: str = ""
    #: Abstract-cycle cost delta under the report's cost model.
    cost: int = 0
    #: Location keys of the culprit pairs this action covers.
    covers: list = field(default_factory=list)
    #: Ids (into the round's enumeration) of the cycles broken.
    cycles: list = field(default_factory=list)

    def to_dict(self):
        return {
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "instr": self.instr,
            "from_order": self.from_order,
            "to_order": self.to_order,
            "cost": self.cost,
            "covers": list(self.covers),
            "cycles": list(self.cycles),
        }

    def describe(self):
        where = f"{self.function}:{self.block}[{self.index}]"
        if self.kind == "strengthen":
            what = (f"strengthen {self.instr} "
                    f"{self.from_order} -> {self.to_order}")
        else:
            side = "after" if self.kind == "fence_after" else "before"
            what = f"insert fence(seq_cst) {side} {self.instr}"
        return (f"{where}: {what}  (+{self.cost} cycles, breaks "
                f"{len(self.cycles)} cycles via {len(self.covers)} pairs)")


@dataclass
class RepairReport:
    """Everything one :func:`repair_module` call did and proved."""

    module_name: str = ""
    model: str = "wmm"
    #: Cost-model name the action costs are stated against.
    arch: str = "armv8"
    #: One entry per fixed-point round: the solved cover plus the
    #: enumeration and solver evidence it came from.
    rounds: list = field(default_factory=list)
    robust_after: bool = False
    #: True when cycle enumeration hit a cap in any round (culprit
    #: coverage stays exact; only the per-cycle provenance may be
    #: incomplete).
    bounded: bool = False
    cost_before: dict = field(default_factory=dict)
    cost_after: dict = field(default_factory=dict)
    #: Cost of the robust blanket-SC incumbent (the completed port)
    #: when the run came through :func:`resynthesize_ported`, else {}.
    incumbent: dict = field(default_factory=dict)
    #: Optional 0-state verify evidence (``verify=True``).
    verify: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    notes: list = field(default_factory=list)

    @property
    def actions(self):
        return [action for entry in self.rounds
                for action in entry["actions"]]

    @property
    def total_cost(self):
        return sum(action.cost for action in self.actions)

    @property
    def fences_added(self):
        return sum(1 for a in self.actions if a.kind != "strengthen")

    @property
    def strengthened(self):
        return sum(1 for a in self.actions if a.kind == "strengthen")

    @property
    def cycles_broken(self):
        return sum(entry["cycles"] for entry in self.rounds)

    @property
    def barrier_cost_before(self):
        return self.cost_before.get("barriers", 0)

    @property
    def barrier_cost_after(self):
        return self.cost_after.get("barriers", 0)

    @property
    def solver(self):
        """Weakest solver across rounds (``exact`` only when all are)."""
        solvers = {entry["solver"] for entry in self.rounds}
        if not solvers:
            return "none"
        return "exact" if solvers == {"exact"} else "greedy"

    @property
    def optimal(self):
        return bool(self.rounds) and all(
            entry["optimal"] for entry in self.rounds
        )

    def to_dict(self):
        return {
            "module": self.module_name,
            "model": self.model,
            "arch": self.arch,
            "robust_after": self.robust_after,
            "bounded": self.bounded,
            "rounds": [
                {
                    "cycles": entry["cycles"],
                    "culprits": entry["culprits"],
                    "delayable": entry["delayable"],
                    "solver": entry["solver"],
                    "optimal": entry["optimal"],
                    "lower_bound": entry["lower_bound"],
                    "nodes_explored": entry["nodes_explored"],
                    "actions": [a.to_dict() for a in entry["actions"]],
                }
                for entry in self.rounds
            ],
            "total_cost": self.total_cost,
            "fences_added": self.fences_added,
            "strengthened": self.strengthened,
            "cycles_broken": self.cycles_broken,
            "solver": self.solver,
            "optimal": self.optimal,
            "cost_before": dict(self.cost_before),
            "cost_after": dict(self.cost_after),
            "incumbent": dict(self.incumbent),
            "verify": dict(self.verify),
            "wall_seconds": self.wall_seconds,
            "notes": list(self.notes),
        }

    def summary(self):
        if not self.rounds:
            status = "already robust, nothing to repair"
            return (f"repair {self.module_name} [{self.model}/{self.arch}]:"
                    f" {status}")
        status = "robust" if self.robust_after else "STILL NON-ROBUST"
        bound = "optimal" if self.optimal else "greedy"
        return (
            f"repair {self.module_name} [{self.model}/{self.arch}]: "
            f"{status} after {len(self.rounds)} round(s) — "
            f"{self.cycles_broken} cycles broken by "
            f"{self.strengthened} strengthenings + "
            f"{self.fences_added} fences "
            f"(+{self.total_cost} cycles, {bound} cover)"
        )

    def render(self):
        lines = [self.summary()]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for number, entry in enumerate(self.rounds, 1):
            bound = (f"optimal" if entry["optimal"]
                     else f">= {entry['lower_bound']}")
            lines.append(
                f"  round {number}: {entry['cycles']} cycles over "
                f"{entry['culprits']} culprit pairs "
                f"({entry['solver']} cover, {bound}):"
            )
            for action in entry["actions"]:
                lines.append(f"    {action.describe()}")
        if self.verify:
            lines.append(
                f"  verify: {self.verify.get('outcome', '?')} via "
                f"{self.verify.get('verdict_source', '?')}, "
                f"{self.verify.get('states', 0)} states"
            )
        return "\n".join(lines)

    # -- replay ----------------------------------------------------------

    def apply(self, module):
        """Re-apply the recorded repairs to (another copy of) the module.

        Replays rounds in order; within a round, strengthenings first
        (index-stable), then fence insertions per block in descending
        slot order so earlier indices stay valid.  Makes the report a
        standalone patch description, independent of the instruction
        objects it was computed from.
        """
        for entry in self.rounds:
            strengthens = [a for a in entry["actions"]
                           if a.kind == "strengthen"]
            fences = [a for a in entry["actions"] if a.kind != "strengthen"]
            for action in strengthens:
                block = _find_block(module, action.function, action.block)
                instr = block.instructions[action.index]
                instr.order = _join_order(
                    instr.order, MemoryOrder[action.to_order.upper()]
                )
                instr.marks.add(REPAIR_MARK)
            fences.sort(
                key=lambda a: (a.function, a.block, -_slot(a), a.kind)
            )
            for action in fences:
                block = _find_block(module, action.function, action.block)
                fence = ins.Fence(MemoryOrder.SEQ_CST)
                fence.marks.add(REPAIR_MARK)
                block.insert(_slot(action), fence)
        return module


def _slot(action):
    return action.index + (1 if action.kind == "fence_after" else 0)


def _find_block(module, function_name, label):
    function = module.functions[function_name]
    for block in function.blocks:
        if block.label == label:
            return block
    raise KeyError(f"no block {label!r} in @{function_name}")


def relax_ported(module):
    """Relax every porter-strengthened site of ``module`` in place.

    Marked SC accesses drop to RELAXED and porter-inserted fences are
    deleted — the bottom-up strawman start for
    :func:`repair_module`: the repair pass then *synthesizes* the
    minimal barrier set over the same atomized access footprint that a
    blanket-SC port pays for in full (Table 10's comparison).  Orders
    are inert under SC, so the relaxed module's SC behaviour — and
    hence the robust repaired module's weak-model behaviour — matches
    the port's.  Two kinds of site are kept strong: source-level SC
    accesses (no porting mark — presumed intentional, mirroring the
    weakener's ``require_marks`` default), and lock-word accesses (the
    race classifier's LOCK class).  Relaxing a lock word would
    dissolve the lock *structurally* — the lockset analysis no longer
    recognizes the idiom, every protected access degrades to racy, and
    the repair pass would have to fence data the port never touched.
    Returns ``(accesses_relaxed, fences_deleted)``.
    """
    from repro.analysis.races import AccessClass, classify_module
    from repro.opt.candidates import PORTER_ACCESS_MARKS, PORTER_FENCE_MARKS

    lock_words = {
        finding.instr
        for finding in classify_module(module).findings
        if finding.classification is AccessClass.LOCK
    }
    relaxed = deleted = 0
    for function in module.functions.values():
        for block in function.blocks:
            kept = []
            for instr in block.instructions:
                if (isinstance(instr, ins.Fence)
                        and instr.marks & PORTER_FENCE_MARKS):
                    deleted += 1
                    continue
                if (isinstance(instr, (ins.Load, ins.Store, ins.Cmpxchg,
                                       ins.AtomicRMW))
                        and instr.order is MemoryOrder.SEQ_CST
                        and instr.marks & PORTER_ACCESS_MARKS
                        and instr not in lock_words):
                    instr.order = MemoryOrder.RELAXED
                    relaxed += 1
                kept.append(instr)
            block.instructions[:] = kept
    return relaxed, deleted


def resynthesize_ported(module, model="wmm", arch=None, cost_model=None,
                        verify=False, max_steps=2500, max_states=400_000):
    """Re-synthesize a ported module's barriers bottom-up (Table 10).

    Relaxes every porter-strengthened site (:func:`relax_ported`), then
    statically repairs the result to robustness — so the barrier set is
    *synthesized* from the critical cycles instead of inherited from
    the blanket-SC port.  The completed port (the port plus its own
    repair when it is not robust as-is) serves as the incumbent: if the
    synthesized assignment ends up costlier, the incumbent is returned
    instead — a synthesizer should never return worse than a known
    feasible solution.  Returns ``(module, RepairReport)``; the input
    is never mutated.
    """
    cost_model = cost_model if cost_model is not None else (
        cost_model_for(arch))
    incumbent = module.clone()
    _, completion = repair_module(
        incumbent, model=model, cost_model=cost_model, clone=False,
        verify=verify, max_steps=max_steps, max_states=max_states,
    )
    work = module.clone()
    relaxed, deleted = relax_ported(work)
    work, report = repair_module(
        work, model=model, cost_model=cost_model, clone=False,
        verify=verify, max_steps=max_steps, max_states=max_states,
    )
    report.notes.append(
        f"resynthesis: relaxed {relaxed} accesses, deleted {deleted} "
        f"porter fences before repair"
    )
    report.incumbent = dict(completion.cost_after)
    completion.incumbent = dict(completion.cost_after)
    fallback = (not report.robust_after
                or report.barrier_cost_after
                > completion.barrier_cost_after)
    if fallback:
        completion.notes.append(
            f"resynthesis fell back to the blanket-SC completion: "
            f"synthesized cover cost {report.barrier_cost_after} > "
            f"incumbent {completion.barrier_cost_after}"
        )
        return incumbent, completion
    return work, report


# -- action enumeration ----------------------------------------------------


def _merge_acquire(instr):
    """Weakest order of ``instr`` with acquire semantics, or None."""
    order = instr.order
    if order.has_acquire:
        return None
    if isinstance(instr, ins.Load):
        return MemoryOrder.ACQUIRE
    if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
        return (MemoryOrder.ACQ_REL if order.has_release
                else MemoryOrder.ACQUIRE)
    return None


def _merge_release(instr):
    """Weakest order of ``instr`` with release semantics, or None."""
    order = instr.order
    if order.has_release:
        return None
    if isinstance(instr, ins.Store):
        return MemoryOrder.RELEASE
    if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
        return (MemoryOrder.ACQ_REL if order.has_acquire
                else MemoryOrder.RELEASE)
    return None


def _still_delayable(model, a, b, changes):
    """Would pair (a, b) stay delayable under the hypothetical order
    ``changes`` (instr -> new order)?  Mirrors
    ``RobustnessAnalyzer._delayable`` exactly, with orders read through
    the change map."""

    def order(node):
        return changes.get(node.instr, node.order)

    if model == "tso":
        return (a.kind == "store"
                and order(a) is not MemoryOrder.SEQ_CST
                and b.kind == "load")
    order_a, order_b = order(a), order(b)
    acquires = a.kind in ("load", "rmw") and order_a.has_acquire
    releases = b.kind in ("store", "rmw_store") and order_b.has_release
    both_sc = (order_a is MemoryOrder.SEQ_CST
               and order_b is MemoryOrder.SEQ_CST)
    return not (acquires or releases or both_sc)


def _join_order(current, target):
    """Least order at least as strong as both (the strengthen lattice).

    Two chosen actions may touch the same instruction (an acquire merge
    and a ``strengthen_pair`` SC lift); applying the second must never
    *downgrade* what the first established — coverage simulation is per
    action, and the delayability predicate is monotone in strength, so
    joining preserves every action's coverage.
    """
    if current is target:
        return current
    if current is MemoryOrder.SEQ_CST or target is MemoryOrder.SEQ_CST:
        return MemoryOrder.SEQ_CST
    has_acquire = current.has_acquire or target.has_acquire
    has_release = current.has_release or target.has_release
    if has_acquire and has_release:
        return MemoryOrder.ACQ_REL
    if has_acquire:
        return MemoryOrder.ACQUIRE
    if has_release:
        return MemoryOrder.RELEASE
    return target


def _enumerate_actions(model, culprits, nodes, cost_model, sort_key):
    """Candidate actions for the culprit pairs, with exact coverage.

    Strengthen coverage is simulated through the delayability predicate
    (so e.g. an acquire upgrade covers *every* culprit pair whose
    a-side half sits on that instruction); endpoint-adjacent fences
    cover every pair sharing the endpoint's instruction, because the
    slot immediately after (before) an instruction lies on every path
    out of (into) it.
    """
    actions = {}

    def add(kind, targets, cost):
        key = (kind,) + tuple(
            (id(instr), to_order) for instr, _node, to_order in targets
        )
        action = actions.get(key)
        if action is None:
            action = _Action(kind, targets, cost,
                             min(sort_key(node.nid)
                                 for _instr, node, _order in targets))
            actions[key] = action
        return action

    def strengthen_cost(instr, to_order):
        return max(
            0,
            cost_model.access_cost(instr, to_order)
            - cost_model.access_cost(instr),
        )

    for pair_id, (a_nid, b_nid) in enumerate(culprits):
        a, b = nodes[a_nid], nodes[b_nid]
        candidates = []
        if model == "tso":
            if a.kind == "store":
                candidates.append((a, MemoryOrder.SEQ_CST))
        else:
            acq = _merge_acquire(a.instr)
            if acq is not None and a.kind in ("load", "rmw"):
                candidates.append((a, acq))
            rel = _merge_release(b.instr)
            if rel is not None and b.kind in ("store", "rmw_store"):
                candidates.append((b, rel))
            # SC completion: when one side is already SC, lifting the
            # other to SC blocks the pair (`both_sc`) even where
            # acquire/release cannot apply (e.g. SC store -> load).
            if a.is_sc and not b.is_sc:
                candidates.append((b, MemoryOrder.SEQ_CST))
            if b.is_sc and not a.is_sc:
                candidates.append((a, MemoryOrder.SEQ_CST))
        covered_by_merge = False
        for node, to_order in candidates:
            if _still_delayable(model, a, b, {node.instr: to_order}):
                continue
            covered_by_merge = True
            add("strengthen", [(node.instr, node, to_order)],
                strengthen_cost(node.instr, to_order)).covers.add(pair_id)
        if (model != "tso" and not covered_by_merge
                and a.instr is not b.instr):
            # SB-shaped pair (store -> load under wmm): no single merge
            # applies, but SC on *both* ends blocks it (`both_sc`) —
            # the blanket-SC port's own mechanism, and usually far
            # cheaper than a full fence on either cost model.
            add("strengthen_pair",
                [(a.instr, a, MemoryOrder.SEQ_CST),
                 (b.instr, b, MemoryOrder.SEQ_CST)],
                strengthen_cost(a.instr, MemoryOrder.SEQ_CST)
                + strengthen_cost(b.instr, MemoryOrder.SEQ_CST),
                ).covers.add(pair_id)
        add("fence_after", [(a.instr, a, None)],
            cost_model.fence).covers.add(pair_id)
        add("fence_before", [(b.instr, b, None)],
            cost_model.fence).covers.add(pair_id)

    # A strengthening's simulated coverage can reach pairs beyond the
    # one that proposed it; sweep once so `covers` is complete.
    for action in actions.values():
        if action.kind.startswith("fence"):
            # fences: every culprit pair anchored on the same instr.
            side = 0 if action.kind == "fence_after" else 1
            for pair_id, pair in enumerate(culprits):
                if nodes[pair[side]].instr is action.instr:
                    action.covers.add(pair_id)
            continue
        changes = action.changes()
        for pair_id, (a_nid, b_nid) in enumerate(culprits):
            if not _still_delayable(model, nodes[a_nid], nodes[b_nid],
                                    changes):
                action.covers.add(pair_id)

    result = sorted(actions.values(),
                    key=lambda a: (a.cost, a.sort_key, a.kind))
    # Dominance pruning (exactness-preserving): drop any action whose
    # coverage a no-more-expensive earlier action already subsumes.
    kept = []
    for action in result:
        if any(k.cost <= action.cost and action.covers <= k.covers
               for k in kept):
            continue
        kept.append(action)
    return kept


# -- min-cost cover solvers ------------------------------------------------


def _greedy_cover(n_pairs, actions, cost_model):
    """Weighted set-cover greedy with *marginal* re-pricing.

    Strengthening costs are priced against the orders committed by the
    actions already chosen: once a store is lifted to SC, every other
    ``strengthen_pair`` sharing it only pays the partner's delta.
    Static additive pricing misses exactly this quadratic synergy —
    one SC endpoint participates in many ``both_sc`` blocks — and
    drives the greedy toward fences a blanket-SC assignment beats.
    A final elimination pass drops actions made redundant by later,
    wider picks.
    """
    uncovered = set(range(n_pairs))
    committed = {}  # instr -> order established by chosen actions
    chosen = []

    def marginal_cost(action):
        if action.kind.startswith("fence"):
            return action.cost
        total = 0
        for instr, _node, to_order in action.targets:
            current = committed.get(instr, instr.order)
            joined = _join_order(current, to_order)
            total += max(0, cost_model.access_cost(instr, joined)
                         - cost_model.access_cost(instr, current))
        return total

    while uncovered:
        best = None
        best_rank = None
        for index, action in enumerate(actions):
            gain = len(action.covers & uncovered)
            if not gain:
                continue
            cost = marginal_cost(action)
            rank = (cost / gain, cost, action.sort_key,
                    action.kind, index)
            if best_rank is None or rank < best_rank:
                best, best_rank = action, rank
        if best is None:
            break  # uncoverable pair: caller falls back to fences
        chosen.append(best)
        uncovered -= best.covers
        for instr, _node, to_order in best.targets:
            if to_order is not None:
                committed[instr] = _join_order(
                    committed.get(instr, instr.order), to_order
                )

    # Elimination: an early pick can be subsumed by the union of later,
    # wider picks; drop (costliest first) any action the rest cover.
    for action in sorted(chosen, key=lambda a: (-a.cost, a.sort_key)):
        rest = [a for a in chosen if a is not action]
        covered = set()
        for a in rest:
            covered |= a.covers
        if action.covers <= covered:
            chosen = rest
    return chosen, not uncovered


def _dual_lower_bound(uncovered, actions):
    """Admissible lower bound: sum of min-cover costs over a set of
    pairwise action-disjoint uncovered pairs (no action can pay for two
    of them at once)."""
    remaining = set(uncovered)
    covering = {
        pair: [a for a in actions if pair in a.covers]
        for pair in remaining
    }
    bound = 0
    while remaining:
        pair = max(
            remaining,
            key=lambda p: (min((a.cost for a in covering[p]), default=0), -p),
        )
        cover = covering[pair]
        bound += min((a.cost for a in cover), default=0)
        used = set()
        for action in cover:
            used |= action.covers
        remaining -= used
        remaining.discard(pair)
    return bound


def _branch_and_bound(n_pairs, actions, incumbent):
    """Exact min-cost cover for small instances.

    DFS that branches on the uncovered pair with the fewest covering
    actions; prunes with cost-so-far + the dual bound against the
    incumbent (initialized from the greedy solution).  Returns
    ``(best, optimal, nodes)`` — ``optimal`` is False only when the
    node budget ran out.
    """
    best_cost = sum(a.cost for a in incumbent)
    best = list(incumbent)
    state = {"nodes": 0, "complete": True}

    def dfs(uncovered, chosen, cost):
        nonlocal best_cost, best
        state["nodes"] += 1
        if state["nodes"] > EXACT_NODE_BUDGET:
            state["complete"] = False
            return
        if not uncovered:
            if cost < best_cost:
                best_cost, best = cost, list(chosen)
            return
        if cost + _dual_lower_bound(uncovered, actions) >= best_cost:
            return
        pair = min(
            uncovered,
            key=lambda p: (sum(1 for a in actions if p in a.covers), p),
        )
        options = sorted(
            (a for a in actions if pair in a.covers),
            key=lambda a: (a.cost, a.sort_key, a.kind),
        )
        if not options:
            return  # uncoverable: this branch cannot complete
        for action in options:
            dfs(uncovered - action.covers, chosen + [action],
                cost + action.cost)

    dfs(frozenset(range(n_pairs)), [], 0)
    return best, state["complete"], state["nodes"]


# -- driver ----------------------------------------------------------------


def repair_module(module, model="wmm", arch=None, cost_model=None,
                  clone=True, max_cycles_per_pair=4, max_total_cycles=64,
                  max_rounds=4, verify=False, max_steps=2500,
                  max_states=400_000, analyzer=None, cache=None,
                  name_heuristic=True, por=None, macro=None):
    """Statically repair ``module`` to robustness under ``model``.

    Returns ``(repaired_module, RepairReport)``.  ``arch`` names the
    cost model (``"armv8"`` / ``"power"``; ``cost_model`` passes one
    directly and wins).  ``clone=False`` mutates the input in place and
    is how the pipeline / weakener embed the pass.  ``analyzer`` reuses
    an existing :class:`RobustnessAnalyzer` already bound to the same
    module object (the Oracle shares its graph this way).

    ``verify=True`` additionally model-checks the repaired module with
    the robustness fast path and records the evidence — for a
    successful repair that is a 0-state check
    (``verdict_source="robustness"``).
    """
    started = time.perf_counter()
    if cost_model is None:
        cost_model = cost_model_for(arch)
    if clone:
        module = module.clone()
        analyzer = None
    if analyzer is not None and analyzer.module is not module:
        analyzer = None
    if analyzer is None:
        analyzer = RobustnessAnalyzer(
            module, model=model, cache=cache,
            name_heuristic=name_heuristic,
        )
    report = RepairReport(
        module_name=module.name, model=model, arch=cost_model.name,
    )
    report.cost_before = estimate_cost(module, cost_model).to_dict()

    for _round in range(max_rounds):
        enum = analyzer.enumerate_critical_cycles(
            max_cycles_per_pair=max_cycles_per_pair,
            max_total=max_total_cycles,
        )
        if enum.bounded:
            report.bounded = True
        if not enum.culprits:
            report.robust_after = True
            break
        positions = _instruction_positions(module)
        cycles_of = {}
        for cycle in enum.cycles:
            cycles_of.setdefault(cycle.delay, []).append(cycle.cycle_id)
        actions = _enumerate_actions(
            model, enum.culprits, enum.nodes, cost_model,
            analyzer._location_sort_key,
        )
        n_pairs = len(enum.culprits)
        chosen, covered = _greedy_cover(n_pairs, actions, cost_model)
        solver, optimal, nodes_explored = "greedy", False, 0
        lower_bound = _dual_lower_bound(range(n_pairs), actions)
        if (covered and n_pairs <= EXACT_MAX_PAIRS
                and len(actions) <= EXACT_MAX_ACTIONS):
            chosen, optimal, nodes_explored = _branch_and_bound(
                n_pairs, actions, chosen
            )
            if optimal:
                solver = "exact"
                lower_bound = sum(a.cost for a in chosen)
        if not covered:
            report.notes.append(
                "greedy cover left culprit pairs uncovered; "
                "round abandoned"
            )
            break

        applied = _apply_round(chosen, enum, positions, cycles_of,
                               cost_model)
        report.rounds.append({
            "cycles": len(enum.cycles),
            "culprits": len(enum.culprits),
            "delayable": len(enum.delayable),
            "solver": solver,
            "optimal": optimal,
            "lower_bound": lower_bound,
            "nodes_explored": nodes_explored,
            "actions": applied,
        })
    else:
        report.notes.append(
            f"fixed point not reached within {max_rounds} rounds"
        )
    if report.rounds and not report.robust_after:
        # The loop broke out of enumeration without confirming: one
        # authoritative re-classification settles it.
        report.robust_after = analyzer.analyze(max_witnesses=1).robust

    report.cost_after = estimate_cost(module, cost_model).to_dict()
    if verify:
        from repro.mc.explorer import check_module

        result = check_module(
            module, model=model, max_steps=max_steps,
            max_states=max_states, robustness=True, por=por,
            macro=macro,
        )
        report.verify = {
            "outcome": result.outcome,
            "verdict_source": result.verdict_source,
            "states": result.states_explored,
        }
    report.wall_seconds = time.perf_counter() - started
    return module, report


def _apply_round(chosen, enum, positions, cycles_of, cost_model):
    """Mutate the live module with one round's cover; record actions.

    Strengthenings first (index-stable), then fences per block in
    descending slot order — the exact order :meth:`RepairReport.apply`
    replays, so the recorded round-start coordinates stay truthful.
    """
    nodes = enum.nodes
    records = []

    def record(action, instr, from_order, to_order, cost):
        function, block_label, index = positions[instr]
        pair_keys = sorted(
            f"{nodes[a].describe()} ->po {nodes[b].describe()}"
            for a, b in (enum.culprits[p] for p in action.covers)
        )
        cycle_ids = sorted({
            cid
            for p in action.covers
            for cid in cycles_of.get(enum.culprits[p], ())
        })
        records.append(RepairAction(
            kind=("strengthen" if action.kind.startswith("strengthen")
                  else action.kind),
            function=function,
            block=block_label,
            index=index,
            instr=repr(instr),
            from_order=(from_order.name.lower()
                        if from_order is not None else ""),
            to_order=(to_order.name.lower()
                      if to_order is not None else "seq_cst"),
            cost=cost,
            covers=pair_keys,
            cycles=cycle_ids,
        ))
        return records[-1]

    strengthens = [a for a in chosen if a.kind.startswith("strengthen")]
    fences = [a for a in chosen if a.kind.startswith("fence")]
    strengthens.sort(key=lambda a: (a.sort_key, a.kind))
    for action in strengthens:
        for instr, _node, to_order in action.targets:
            # Two chosen actions may overlap on one instruction; join so
            # a later apply can only strengthen further, and record the
            # actual (post-join) delta so costs stay truthful.  An
            # endpoint another pick already made strong enough is a
            # no-op: nothing to mutate, nothing to record.
            joined = _join_order(instr.order, to_order)
            if joined is instr.order:
                continue
            cost = max(0, cost_model.access_cost(instr, joined)
                       - cost_model.access_cost(instr))
            record(action, instr, instr.order, joined, cost)
            instr.order = joined
            instr.marks.add(REPAIR_MARK)

    def fence_slot(action):
        index = positions[action.instr][2]
        return index + (1 if action.kind == "fence_after" else 0)

    fences.sort(key=lambda a: (positions[a.instr][0], positions[a.instr][1],
                               -fence_slot(a), a.kind))
    for action in fences:
        record(action, action.instr, None, None, cost_model.fence)
        block = action.instr.block
        fence = ins.Fence(MemoryOrder.SEQ_CST)
        fence.marks.add(REPAIR_MARK)
        block.insert(fence_slot(action), fence)

    records.sort(key=lambda r: (r.function, r.block, r.index, r.kind))
    return records
