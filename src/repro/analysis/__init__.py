"""Static analyses underpinning AtoMig's pattern detection."""

from repro.analysis.cfg import predecessors, reverse_postorder
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, find_loops
from repro.analysis.nonlocal_ import (
    LocationKeyProvider,
    NonLocalInfo,
    TypeBasedKeyProvider,
)
from repro.analysis.influence import InfluenceAnalysis
from repro.analysis.callgraph import CallGraph, CallSite
from repro.analysis.cache import AnalysisCache
from repro.analysis.pointsto import (
    AbstractObject,
    PointsToAnalysis,
    PointsToKeyProvider,
)
from repro.analysis.escape import ThreadEscapeAnalysis
from repro.analysis.lockset import LocksetResult, compute_locksets
from repro.analysis.races import AccessClass, RaceReport, classify_module

__all__ = [
    "AbstractObject",
    "AccessClass",
    "AnalysisCache",
    "CallGraph",
    "CallSite",
    "DominatorTree",
    "InfluenceAnalysis",
    "LocationKeyProvider",
    "Loop",
    "LocksetResult",
    "NonLocalInfo",
    "PointsToAnalysis",
    "PointsToKeyProvider",
    "RaceReport",
    "ThreadEscapeAnalysis",
    "TypeBasedKeyProvider",
    "classify_module",
    "compute_locksets",
    "find_loops",
    "predecessors",
    "reverse_postorder",
]
