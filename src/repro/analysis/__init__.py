"""Static analyses underpinning AtoMig's pattern detection."""

from repro.analysis.cfg import predecessors, reverse_postorder
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, find_loops
from repro.analysis.nonlocal_ import NonLocalInfo
from repro.analysis.influence import InfluenceAnalysis
from repro.analysis.callgraph import CallGraph, CallSite
from repro.analysis.lockset import LocksetResult, compute_locksets
from repro.analysis.races import AccessClass, RaceReport, classify_module

__all__ = [
    "AccessClass",
    "CallGraph",
    "CallSite",
    "DominatorTree",
    "InfluenceAnalysis",
    "Loop",
    "LocksetResult",
    "NonLocalInfo",
    "RaceReport",
    "classify_module",
    "compute_locksets",
    "find_loops",
    "predecessors",
    "reverse_postorder",
]
