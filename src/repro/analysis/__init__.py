"""Static analyses underpinning AtoMig's pattern detection."""

from repro.analysis.cfg import predecessors, reverse_postorder
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, find_loops
from repro.analysis.nonlocal_ import NonLocalInfo
from repro.analysis.influence import InfluenceAnalysis
from repro.analysis.callgraph import CallGraph

__all__ = [
    "CallGraph",
    "DominatorTree",
    "InfluenceAnalysis",
    "Loop",
    "NonLocalInfo",
    "find_loops",
    "predecessors",
    "reverse_postorder",
]
