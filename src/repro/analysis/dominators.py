"""Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm."""

from repro.analysis.cfg import predecessors, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree for one function's CFG."""

    def __init__(self, function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._rpo_index = {block: index for index, block in enumerate(self.rpo)}
        self.idom = {}
        self._compute()

    def _compute(self):
        preds = predecessors(self.function)
        entry = self.function.entry
        idom = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                candidates = [p for p in preds[block] if p in idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = self._intersect(idom, new_idom, pred)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(self, idom, a, b):
        index = self._rpo_index
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def dominates(self, a, b):
        """True when block ``a`` dominates block ``b``."""
        if a is b:
            return True
        runner = b
        entry = self.function.entry
        while runner is not entry:
            runner = self.idom.get(runner)
            if runner is None:
                return False
            if runner is a:
                return True
        return a is entry
