"""Static robustness analysis (Shasha-Snir critical cycles).

Decides, without exploring a single state, whether a module can exhibit
*any* behavior under a weak model (tso / wmm) that it does not already
exhibit under SC.  A module is **robust** when no critical cycle of the
static conflict/program-order graph contains a program-order edge the
target model may delay past the accesses it conflicts with; robustness
implies the weak-model verdict provably equals the SC verdict, so the
model checker and the weakening oracle can skip exploration entirely
(DESIGN.md §6e).

Construction, reusing the existing analyses:

- **Nodes** are the shared-memory accesses the race classifier
  (:mod:`repro.analysis.races`) marks conflict-capable: ``lock``,
  ``racy``, ``unknown`` and heuristically-``protected`` accesses, plus
  keyless wildcards.  Accesses that never run concurrently (spawn/join
  epochs) are pruned; conflict edges between two accesses that
  structurally hold a common lock are pruned per query, but only while
  the lock's own protocol is enforced under the current orders — an
  unfenced spinlock protects nothing on a weak model.  RMWs
  split into a read half and a write half, mirroring the operational
  machine's two window entries: an acquire-only CAS orders later
  accesses after its *read*, but its *store* half can still be
  overtaken (the CAS-overtake litmus).
- **Conflict edges** connect same-location accesses (points-to /
  type-based location keys; ``None`` keys are wildcards) from distinct
  thread instances where at least one side writes.
- **Program-order pairs** come from an interprocedural forward dataflow
  over the call-site-aware callgraph: ``(a, b)`` is a *po pair* when
  ``b`` may execute after ``a`` in the same thread, and an *open* pair
  when additionally some path between them crosses no ordering
  instruction (a fence under wmm; fences, RMWs and SC stores under
  tso, whose store buffer they drain).
- A pair is **delayable** when it is open and its endpoint orders do
  not enforce it: under wmm neither ``a`` acquires, nor ``b`` releases,
  nor both are SC (exactly the machine's ``may_commit`` blocking
  rules); under tso only plain-store -> load pairs delay.  Same-location
  pairs are never delayable (per-location coherence holds in every
  model here).
- A **critical cycle** alternates po pairs with conflict edges (a
  thread may also contribute a single access, e.g. the IRIW writers).
  The module is non-robust iff some delayable pair closes such a
  cycle; each one found is reported as a :class:`RobustnessWitness`
  with per-access provenance.

The conflict graph is independent of memory orders and fences, so an
:class:`RobustnessAnalyzer` builds it once and re-answers
:meth:`analyze` cheaply while the optimizer mutates orders in place.
"""

import time
from dataclasses import dataclass, field

from repro.analysis.races import (
    AccessClass,
    _spawn_epochs,
    _thread_contexts,
    classify_module,
)
from repro.ir import instructions as ins

#: Version of the ``atomig robustness --json`` payload.  Kept in
#: lockstep with :data:`repro.core.report.LINT_SCHEMA_VERSION` (the two
#: static-analysis payloads version together); bumped to 4 when
#: witnesses gained deterministic ordering and results gained this
#: field.
ROBUSTNESS_SCHEMA_VERSION = 4

#: Key classes whose same-key accesses may genuinely conflict.
_CONFLICT_CAPABLE = (
    AccessClass.LOCK, AccessClass.RACY, AccessClass.UNKNOWN,
)
#: Classes that cannot conflict among themselves but may still alias a
#: keyless wildcard access.
_WILDCARD_PARTNERS = (
    AccessClass.READ_ONLY, AccessClass.UNSHARED,
)


class _Node:
    """One shared access (or RMW half) in the conflict graph."""

    __slots__ = ("nid", "instr", "kind", "is_write", "function",
                 "block_label", "index", "key", "classification", "locks")

    def __init__(self, nid, instr, kind, is_write, function, block_label,
                 index, key, classification, locks=frozenset()):
        self.nid = nid
        self.instr = instr
        #: Window-entry kind: load / store / rmw (read half) /
        #: rmw_store (write half) — the machine's vocabulary.
        self.kind = kind
        self.is_write = is_write
        self.function = function
        self.block_label = block_label
        self.index = index
        self.key = key
        self.classification = classification
        #: Structural lock keys definitely held at the access.
        self.locks = locks

    @property
    def order(self):
        return self.instr.order

    # Enforcement properties mirror machine.WindowEntry: only the read
    # half of an RMW acquires, only the write half releases.

    @property
    def acquires(self):
        return self.kind in ("load", "rmw") and self.order.has_acquire

    @property
    def releases(self):
        return self.kind in ("store", "rmw_store") and self.order.has_release

    @property
    def is_sc(self):
        return self.order is ins.MemoryOrder.SEQ_CST

    def provenance(self):
        return {
            "function": self.function,
            "block": self.block_label,
            "index": self.index,
            "instr": repr(self.instr),
            "kind": self.kind,
            "half": ("write" if self.kind == "rmw_store"
                     else "read" if self.kind == "rmw" else ""),
            "key": repr(self.key) if self.key is not None else None,
            "order": self.order.name.lower(),
        }

    def describe(self):
        half = f".{self.kind}" if self.kind.startswith("rmw") else ""
        key = f" {self.key}" if self.key is not None else " ?"
        return (f"{self.function}:{self.block_label}[{self.index}]"
                f" {self.instr.opcode}{half}{key}"
                f" ({self.order.name.lower()})")


@dataclass
class RobustnessWitness:
    """One concrete critical cycle with an unenforced delay."""

    #: The delayable po pair (provenance dicts of a and b).
    delay: tuple = ()
    #: Cycle edges in order: {"kind": po-delay|po|conflict,
    #: "from": provenance, "to": provenance}.
    edges: list = field(default_factory=list)

    def to_dict(self):
        return {"delay": list(self.delay), "edges": list(self.edges)}

    def describe(self):
        lines = []
        for edge in self.edges:
            src = edge["from"]
            lines.append(
                f"{src['function']}:{src['block']}[{src['index']}] "
                f"{src['instr']}"
                + (f" [{src['half']} half]" if src["half"] else "")
                + f" ({src['order']})  --{edge['kind']}-->"
            )
        return "\n".join(lines)


@dataclass
class RobustnessResult:
    """Verdict of one robustness query."""

    module_name: str = ""
    model: str = "wmm"
    robust: bool = True
    witnesses: list = field(default_factory=list)
    #: Conflict-graph size (after pruning).
    nodes: int = 0
    conflict_edges: int = 0
    #: Program-order pairs between conflict nodes (distinct locations).
    po_pairs: int = 0
    #: Pairs the model may delay (open path + unenforcing orders).
    delayable_pairs: int = 0
    wall_seconds: float = 0.0
    notes: list = field(default_factory=list)

    def summary(self):
        verdict = ("robust" if self.robust
                   else f"NON-ROBUST ({len(self.witnesses)} critical "
                        f"cycles shown)")
        return (
            f"robustness {self.module_name} [{self.model}]: {verdict} — "
            f"{self.nodes} shared accesses, {self.conflict_edges} conflict "
            f"edges, {self.po_pairs} po pairs, {self.delayable_pairs} "
            f"delayable"
        )

    def render(self):
        lines = [self.summary()]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for number, witness in enumerate(self.witnesses, 1):
            lines.append(f"  critical cycle {number}:")
            for line in witness.describe().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)

    def to_dict(self):
        return {
            "schema_version": ROBUSTNESS_SCHEMA_VERSION,
            "module": self.module_name,
            "model": self.model,
            "robust": self.robust,
            "nodes": self.nodes,
            "conflict_edges": self.conflict_edges,
            "po_pairs": self.po_pairs,
            "delayable_pairs": self.delayable_pairs,
            "witnesses": [w.to_dict() for w in self.witnesses],
            "wall_seconds": self.wall_seconds,
            "notes": list(self.notes),
        }


@dataclass
class CriticalCycle:
    """One enumerated critical cycle, rooted at its delayable pair."""

    cycle_id: int = 0
    #: Node ids of the delayable po pair that closes the cycle.
    delay: tuple = ()
    witness: RobustnessWitness = None

    def to_dict(self):
        return {
            "cycle_id": self.cycle_id,
            "delay": list(self.witness.delay),
            "edges": len(self.witness.edges),
        }


@dataclass
class CycleEnumeration:
    """Bounded all-cycles enumeration — the fence synthesizer's input.

    Per the analyzer's criterion a module is non-robust iff some
    *delayable* pair closes a cycle, so cycles are enumerated per
    delayable pair (its *culprits* are the pairs with at least one
    cycle).  ``bounded`` is True when any cap (cycles per pair, total
    cycles, path length, expansion budget) may have truncated the
    enumeration; culprit membership stays exact regardless — pairs
    whose bounded search starved fall back to the unbounded
    single-cycle BFS.
    """

    model: str = "wmm"
    cycles: list = field(default_factory=list)
    #: Delayable (a, b) nid pairs closing >= 1 critical cycle, sorted
    #: by location key.
    culprits: list = field(default_factory=list)
    #: Every delayable (a, b) nid pair, sorted by location key.
    delayable: list = field(default_factory=list)
    bounded: bool = False
    #: nid -> _Node view shared with the analyzer (repair consumes it).
    nodes: dict = field(default_factory=dict)


@dataclass
class _Summary:
    """Interprocedural dataflow summary of one function."""

    #: Node ids in the function or any transitive callee.
    all_nodes: frozenset = frozenset()
    #: Node ids reachable from entry on some ordering-free path.
    entry_nodes: frozenset = frozenset()
    #: Node ids with an ordering-free path to some return.
    exit_nodes: frozenset = frozenset()
    #: Some entry->return path crosses no ordering instruction.
    transparent: bool = False
    #: Fences reachable from entry / reaching a return, ordering-free.
    entry_fences: frozenset = frozenset()
    exit_fences: frozenset = frozenset()


class RobustnessAnalyzer:
    """Order-independent conflict graph + per-query cycle enumeration.

    The graph (nodes, conflict edges) depends only on pointers, locks
    and thread structure, so it is built once in the constructor; each
    :meth:`analyze` call re-runs only the fence-sensitive program-order
    dataflow and the enforcement predicates against the module's
    *current* memory orders, which the barrier optimizer mutates in
    place between queries.
    """

    def __init__(self, module, model="wmm", cache=None, name_heuristic=True):
        self.module = module
        self.model = model
        self._notes = []
        if model == "sc":
            self._nodes = []
            self._conflicts = {}
            return
        races = classify_module(
            module, name_heuristic=name_heuristic, cache=cache
        )
        if cache is not None:
            callgraph = cache.callgraph()
        else:
            from repro.analysis.callgraph import CallGraph

            callgraph = CallGraph(module)
        self._callgraph = callgraph
        self._contexts = _thread_contexts(module, callgraph)
        self._epochs = _spawn_epochs(module, callgraph)
        self._positions = _instruction_positions(module)
        self._build_nodes(races)
        self._build_conflicts()
        self._by_instr = {}
        for node in self._nodes:
            self._by_instr.setdefault(node.instr, []).append(node)

    # -- graph construction ------------------------------------------------

    def _build_nodes(self, races):
        locksets = races.lockset_result
        structural = (locksets.structural_keys()
                      if locksets is not None else frozenset())
        nodes = []
        for finding in races.findings:
            if finding.classification is AccessClass.UNREACHABLE:
                continue
            if not self._epochs.get(finding.instr, True):
                continue  # never runs while another thread is live
            position = self._positions.get(finding.instr)
            if position is None:
                continue
            held = frozenset()
            if locksets is not None and structural:
                keys, tainted = locksets.lockset_at(finding.instr)
                if not tainted:
                    held = frozenset(keys) & structural
            function, block_label, index = position
            for kind, is_write in _halves(finding.instr):
                nodes.append(_Node(
                    nid=len(nodes), instr=finding.instr, kind=kind,
                    is_write=is_write, function=function,
                    block_label=block_label, index=index,
                    key=finding.key,
                    classification=finding.classification,
                    locks=held,
                ))
        self._nodes = nodes

    def _build_conflicts(self):
        """Adjacency over node ids; drops conflict-free nodes."""
        conflicts = {}

        def connect(u, v):
            conflicts.setdefault(u.nid, set()).add(v.nid)
            conflicts.setdefault(v.nid, set()).add(u.nid)

        def may_conflict(u, v):
            if not (u.is_write or v.is_write):
                return False
            return _distinct_instances(
                u.function, v.function, self._contexts
            )

        capable = [
            n for n in self._nodes
            if n.key is not None and (
                n.classification in _CONFLICT_CAPABLE
                or n.classification is AccessClass.PROTECTED
            )
        ]
        by_key = {}
        for node in capable:
            by_key.setdefault(node.key, []).append(node)
        for group in by_key.values():
            for i, u in enumerate(group):
                for v in group[i + 1:]:
                    if u.instr is v.instr:
                        continue  # two halves of one RMW: same location
                    if may_conflict(u, v):
                        connect(u, v)

        # Keyless accesses may alias anything, including read-only and
        # unshared keyed locations (their classification holds only for
        # the accesses the key *did* capture).
        wildcards = [n for n in self._nodes if n.key is None]
        partners = capable + [
            n for n in self._nodes
            if n.key is not None and n.classification in _WILDCARD_PARTNERS
        ]
        for i, w in enumerate(wildcards):
            for v in partners + wildcards[i + 1:]:
                if w.instr is v.instr:
                    continue
                if may_conflict(w, v):
                    connect(w, v)

        self._conflicts = conflicts
        self._cycle_nodes = {
            node.nid: node for node in self._nodes if node.nid in conflicts
        }
        # Lock-word accesses per structural lock key, for _safe_locks.
        self._lock_nodes = {}
        structural = {
            key for node in self._nodes for key in node.locks
        }
        for node in self._nodes:
            if (node.classification is AccessClass.LOCK
                    and node.key is not None and node.key in structural):
                self._lock_nodes.setdefault(node.key, []).append(node)

    def _safe_locks(self):
        """Structural locks whose protocol is enforced under the current
        orders: conflicts between accesses protected by such a lock are
        serialized by the lock itself and cannot appear in a critical
        cycle.

        Under tso every structural lock qualifies: lock acquisition is
        an RMW (drains the store buffer) and neither a protected load
        nor a protected store can pass the releasing store.  Under wmm
        the handoff needs the lock's read side (loads, RMW read halves)
        to acquire and its releasing stores to release — exactly the
        blocking rules that pin protected accesses inside the critical
        section in the commit order.
        """
        if self.model == "tso":
            return frozenset(self._lock_nodes)
        safe = set()
        for key, nodes in self._lock_nodes.items():
            ok = True
            for node in nodes:
                if node.kind in ("load", "rmw"):
                    ok = ok and node.order.has_acquire
                elif node.kind == "store":
                    ok = ok and node.order.has_release
                # rmw_store halves are acquire-side writes (the TAS
                # idiom releases through a plain store); they publish
                # no protected data, so their order is irrelevant.
            if ok:
                safe.add(key)
        return frozenset(safe)

    def _conflict_view(self):
        """Conflict adjacency with same-safe-lock edges pruned."""
        safe = self._safe_locks()
        if not safe:
            return self._conflicts, 0
        view = {}
        pruned = 0
        nodes = self._cycle_nodes
        for u, partners in self._conflicts.items():
            kept = {
                v for v in partners
                if not (nodes[u].locks & nodes[v].locks & safe)
            }
            pruned += len(partners) - len(kept)
            if kept:
                view[u] = kept
        return view, pruned // 2

    # -- per-query analysis ------------------------------------------------

    def analyze(self, max_witnesses=5):
        """Classify the module against its *current* orders and fences."""
        started = time.perf_counter()
        result = RobustnessResult(
            module_name=self.module.name, model=self.model,
        )
        result.notes = list(self._notes)
        if self.model == "sc":
            result.notes.append(
                "sc admits no delays: every module is vacuously robust"
            )
            result.wall_seconds = time.perf_counter() - started
            return result
        result.nodes = len(self._cycle_nodes)
        conflicts, pruned = self._conflict_view()
        result.conflict_edges = (
            sum(len(v) for v in conflicts.values()) // 2
        )
        if pruned:
            result.notes.append(
                f"{pruned} conflict edges pruned: both sides hold a "
                f"lock whose protocol the current orders enforce"
            )
        follows, open_pairs, _fences = self._run_dataflow()
        po_edges = {}
        for a, b in follows:
            po_edges.setdefault(a, set()).add(b)
        result.po_pairs = len(follows)

        delayable = self._sorted_delayable(open_pairs)
        result.delayable_pairs = len(delayable)

        for a, b in delayable:
            witness = self._find_cycle(a, b, po_edges, conflicts)
            if witness is not None:
                result.robust = False
                if len(result.witnesses) < max_witnesses:
                    result.witnesses.append(witness)
                if len(result.witnesses) >= max_witnesses:
                    break
        result.wall_seconds = time.perf_counter() - started
        return result

    def _location_sort_key(self, nid):
        """Stable source-position key: (function, block, index, kind).

        Used wherever pair or witness *order* is observable (reports,
        snapshots, repair provenance): set iteration order would tie
        output to discovery order, which varies as unrelated code
        reshuffles node ids.
        """
        node = self._cycle_nodes[nid]
        return (node.function, node.block_label, node.index, node.kind)

    def _sorted_delayable(self, open_pairs):
        """Delayable pairs of ``open_pairs``, sorted by location key."""
        return sorted(
            (
                (a, b) for a, b in open_pairs
                if self._delayable(self._cycle_nodes[a],
                                   self._cycle_nodes[b])
            ),
            key=lambda pair: (self._location_sort_key(pair[0]),
                              self._location_sort_key(pair[1])),
        )

    def delayable_pairs(self):
        """Sorted provenance pairs the model may currently delay.

        One ``(provenance_a, provenance_b)`` tuple per delayable po
        pair under the module's *current* orders — the observable
        surface for the RMW read/write-half delay semantics (each
        provenance names its ``half``).
        """
        _follows, open_pairs, _fences = self._run_dataflow()
        nodes = self._cycle_nodes
        return [
            (nodes[a].provenance(), nodes[b].provenance())
            for a, b in self._sorted_delayable(open_pairs)
        ]

    def enumerate_critical_cycles(self, max_cycles_per_pair=4,
                                  max_total=64, max_len=5, budget=4000):
        """Bounded enumeration of *all* critical cycles (repair input).

        For each delayable pair (in location-key order) a depth-first
        search over the alternating conflict/po meta-graph collects up
        to ``max_cycles_per_pair`` distinct cycles, capped at
        ``max_total`` cycles overall, ``max_len`` conflict edges per
        cycle and ``budget`` node expansions per pair.  Every culprit
        pair contributes at least one cycle (falling back to the
        unbounded single-cycle BFS when the bounded search starves), so
        culprit membership is exact even when ``bounded`` reports that
        the cycle *list* may be incomplete.
        """
        enum = CycleEnumeration(model=self.model)
        if self.model == "sc":
            return enum
        conflicts, _pruned = self._conflict_view()
        follows, open_pairs, _fences = self._run_dataflow()
        po_edges = {}
        for a, b in follows:
            po_edges.setdefault(a, set()).add(b)
        enum.delayable = self._sorted_delayable(open_pairs)
        enum.nodes = self._cycle_nodes
        for a, b in enum.delayable:
            room = max_total - len(enum.cycles)
            if room <= 0:
                enum.bounded = True
            limit = max(1, min(max_cycles_per_pair, room))
            witnesses, truncated = self._find_cycles(
                a, b, po_edges, conflicts, limit=limit,
                max_len=max_len, budget=budget,
            )
            if truncated:
                enum.bounded = True
            if not witnesses:
                # Bounded search may starve before its first cycle on
                # deep graphs; the BFS keeps culprit status exact.
                fallback = self._find_cycle(a, b, po_edges, conflicts)
                if fallback is not None:
                    witnesses = [fallback]
            if witnesses:
                enum.culprits.append((a, b))
                for witness in witnesses:
                    enum.cycles.append(CriticalCycle(
                        cycle_id=len(enum.cycles), delay=(a, b),
                        witness=witness,
                    ))
        return enum

    def _find_cycles(self, a, b, po_edges, conflicts, limit, max_len=5,
                     budget=4000):
        """Up to ``limit`` distinct critical cycles closing a ->po b.

        Same meta-graph as :meth:`_find_cycle`, explored depth-first
        with adjacency in sorted nid order (deterministic), bounded by
        cycle length (conflict edges), an expansion budget and the
        cycle count.  Returns ``(witnesses, truncated)`` where
        ``truncated`` means some bound may have hidden further cycles.
        """
        if b not in conflicts:
            return [], False
        nodes = self._cycle_nodes
        found = []
        state = {"expansions": 0, "truncated": False}

        def emit(path_edges, closing):
            edges = ([("po-delay", a, b)] + list(path_edges)
                     + [("conflict", closing, a)])
            found.append(RobustnessWitness(
                delay=(nodes[a].provenance(), nodes[b].provenance()),
                edges=[
                    {"kind": kind,
                     "from": nodes[src].provenance(),
                     "to": nodes[dst].provenance()}
                    for kind, src, dst in edges
                ],
            ))

        def dfs(u, path_edges, on_path, depth):
            if len(found) >= limit:
                state["truncated"] = True
                return
            state["expansions"] += 1
            if state["expansions"] > budget or depth >= max_len:
                state["truncated"] = True
                return
            for w in sorted(conflicts.get(u, ())):
                if len(found) >= limit:
                    return
                if w == a:
                    emit(path_edges, u)
                    continue
                if w in on_path:
                    continue
                # The conflicting thread contributes a single access...
                dfs(w, path_edges + [("conflict", u, w)],
                    on_path | {w}, depth + 1)
                # ...or continues along one of its po pairs.
                for v in sorted(po_edges.get(w, ())):
                    if len(found) >= limit:
                        return
                    if v in on_path or v == w or v not in conflicts:
                        continue
                    dfs(v,
                        path_edges + [("conflict", u, w), ("po", w, v)],
                        on_path | {w, v}, depth + 1)

        dfs(b, [], {b}, 0)
        return found[:limit], state["truncated"]

    def _delayable(self, a, b):
        """May the model commit ``b`` before the earlier ``a``?"""
        if self.model == "tso":
            # Only a buffered plain store passes a later load; RMWs and
            # SC stores drain the buffer when issued.
            return (a.kind == "store"
                    and a.order is not ins.MemoryOrder.SEQ_CST
                    and b.kind == "load")
        # wmm: the machine's may_commit blocking rules, negated.
        return not (a.acquires or b.releases or (a.is_sc and b.is_sc))

    def _orders_all_paths(self, instr):
        """Does ``instr`` order *every* earlier-vs-later access pair
        crossing it (i.e. drain the window / store buffer)?"""
        if isinstance(instr, ins.Fence):
            return True
        if self.model == "tso":
            if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
                return True
            if isinstance(instr, ins.Store):
                return instr.order is ins.MemoryOrder.SEQ_CST
        return False

    # -- program-order dataflow --------------------------------------------

    def _run_dataflow(self, track_fences=False):
        """(follows, open_pairs, fence_info) over the cycle nodes.

        ``follows`` holds every distinct-location (a, b) with b
        po-after a in the same thread; ``open_pairs`` is the subset
        where some connecting path crosses no ordering instruction.
        ``fence_info`` maps each reachable fence to [has_before,
        has_after] flags when ``track_fences`` (the dead-fence lint).
        """
        functions = self.module.functions
        summaries = {name: _Summary() for name in functions}
        order = list(self._callgraph.bottom_up_order())
        order = [name for name in order if name in functions]
        for name in functions:
            if name not in order:
                order.append(name)

        fence_info = {} if track_fences else None
        changed = True
        while changed:
            changed = False
            for name in order:
                summary = self._flow_function(
                    functions[name], summaries, collect=None,
                    fence_info=fence_info,
                )
                if summary != summaries[name]:
                    summaries[name] = summary
                    changed = True

        follows = set()
        open_pairs = set()
        live = _live_function_names(self.module, self._callgraph)
        for name in order:
            if name not in live:
                continue
            self._flow_function(
                functions[name], summaries,
                collect=(follows, open_pairs), fence_info=fence_info,
            )
        return follows, open_pairs, fence_info

    def _flow_function(self, function, summaries, collect, fence_info):
        """One forward pass over a function's CFG; returns its summary.

        State per program point: (seen, open, clean, open_fences) —
        node ids that may precede it, the subset with an ordering-free
        path to it, whether an ordering-free path from entry exists,
        and the fences with an ordering-free path to it.
        """
        track = fence_info is not None
        blocks = function.blocks
        if not blocks:
            return _Summary()
        preds = {block: [] for block in blocks}
        for block in blocks:
            for successor in block.successors():
                preds.setdefault(successor, []).append(block)

        entry_nodes = set()
        entry_fences = set()
        exit_nodes = set()
        exit_fences = set()
        transparent = [False]
        out_states = {}

        def transfer(block, state):
            seen, open_, clean, ofences = state
            for instr in block.instructions:
                nodes_here = self._by_instr.get(instr, ())
                for node in nodes_here:
                    if node.nid not in self._cycle_nodes:
                        continue
                    if collect is not None:
                        follows, open_pairs = collect
                        for a in seen:
                            if _pair_locations_differ(
                                self._cycle_nodes[a], node
                            ):
                                follows.add((a, node.nid))
                        for a in open_:
                            if _pair_locations_differ(
                                self._cycle_nodes[a], node
                            ):
                                open_pairs.add((a, node.nid))
                    if track and ofences:
                        for fence in ofences:
                            fence_info[fence][1] = True
                    seen = seen | {node.nid}
                    open_ = open_ | {node.nid}
                    if clean:
                        entry_nodes.add(node.nid)
                if isinstance(instr, ins.Fence):
                    if track:
                        flags = fence_info.setdefault(
                            instr, [False, False]
                        )
                        if open_:
                            flags[0] = True
                        if clean:
                            entry_fences.add(instr)
                        ofences = frozenset({instr})
                    open_ = frozenset()
                    clean = False
                elif self._orders_all_paths(instr):
                    open_ = frozenset()
                    clean = False
                    if track:
                        ofences = frozenset()
                elif isinstance(instr, ins.Call):
                    callee = getattr(instr.callee, "name", None)
                    if callee in summaries:
                        cs = summaries[callee]
                        if collect is not None:
                            follows, open_pairs = collect
                            for a in seen:
                                for b in cs.all_nodes:
                                    if _pair_locations_differ(
                                        self._cycle_nodes[a],
                                        self._cycle_nodes[b],
                                    ):
                                        follows.add((a, b))
                            for a in open_:
                                for b in cs.entry_nodes:
                                    if _pair_locations_differ(
                                        self._cycle_nodes[a],
                                        self._cycle_nodes[b],
                                    ):
                                        open_pairs.add((a, b))
                        if track:
                            if open_:
                                for fence in cs.entry_fences:
                                    fence_info.setdefault(
                                        fence, [False, False]
                                    )[0] = True
                            if cs.entry_nodes:
                                for fence in ofences:
                                    fence_info[fence][1] = True
                        seen = seen | cs.all_nodes
                        if cs.transparent:
                            open_ = open_ | cs.exit_nodes
                            if track:
                                ofences = ofences | cs.exit_fences
                        else:
                            open_ = frozenset(cs.exit_nodes)
                            if track:
                                ofences = frozenset(cs.exit_fences)
                        if clean:
                            entry_nodes.update(cs.entry_nodes)
                            entry_fences.update(cs.entry_fences)
                        clean = clean and cs.transparent
                elif isinstance(instr, ins.Ret):
                    exit_nodes.update(open_)
                    exit_fences.update(ofences)
                    if clean:
                        transparent[0] = True
            return seen, open_, clean, ofences

        empty = frozenset()
        in_states = {blocks[0]: (empty, empty, True, empty)}
        worklist = [blocks[0]]
        while worklist:
            block = worklist.pop(0)
            state = in_states[block]
            out = transfer(block, state)
            if out_states.get(block) == out:
                continue
            out_states[block] = out
            for successor in block.successors():
                merged = _join(in_states.get(successor), out)
                if merged != in_states.get(successor):
                    in_states[successor] = merged
                    if successor not in worklist:
                        worklist.append(successor)

        own = {
            node.nid for node in self._nodes
            if node.function == function.name
            and node.nid in self._cycle_nodes
        }
        all_nodes = set(own)
        for block in blocks:
            for instr in block.instructions:
                if isinstance(instr, ins.Call):
                    callee = getattr(instr.callee, "name", None)
                    if callee in summaries:
                        all_nodes |= summaries[callee].all_nodes
        return _Summary(
            all_nodes=frozenset(all_nodes),
            entry_nodes=frozenset(entry_nodes),
            exit_nodes=frozenset(exit_nodes),
            transparent=transparent[0],
            entry_fences=frozenset(entry_fences),
            exit_fences=frozenset(exit_fences),
        )

    # -- cycle search ------------------------------------------------------

    def _find_cycle(self, a, b, po_edges, conflicts):
        """Critical cycle closing the delayed pair a ->po b, or None.

        BFS from ``b`` back to ``a`` over alternating conflict / po
        steps: from the current node take a conflict edge to ``w``,
        then either continue from ``w`` (a thread contributing a single
        access) or follow one of its po pairs.
        """
        if b not in conflicts:
            return None
        parents = {}
        frontier = [b]
        seen = {b}
        closing = None
        while frontier and closing is None:
            nxt = []
            for u in frontier:
                for w in conflicts.get(u, ()):
                    if w == a:
                        closing = u
                        break
                    for v in {w} | po_edges.get(w, set()):
                        if v not in seen and v in conflicts:
                            seen.add(v)
                            parents[v] = (u, w)
                            nxt.append(v)
                if closing is not None:
                    break
            frontier = nxt
        if closing is None:
            return None

        nodes = self._cycle_nodes
        rev = []
        u = closing
        while u != b:
            prev, w = parents[u]
            if w != u:
                rev.append(("po", w, u))
            rev.append(("conflict", prev, w))
            u = prev
        rev.reverse()
        edges = [("po-delay", a, b)] + rev + [("conflict", closing, a)]
        return RobustnessWitness(
            delay=(nodes[a].provenance(), nodes[b].provenance()),
            edges=[
                {"kind": kind,
                 "from": nodes[src].provenance(),
                 "to": nodes[dst].provenance()}
                for kind, src, dst in edges
            ],
        )

    # -- dead-fence lint ---------------------------------------------------

    def dead_fences(self):
        """Fences not adjacent to any shared access on any path.

        A fence is *live* when some conflict-capable access reaches it
        on an ordering-free path **and** some such access follows it on
        one — only then can it enforce a pair the model might delay.
        Everything else is overhead: a fence before any shared access,
        after the last one, or between two other fences.
        """
        _follows, _open, fence_info = self._run_dataflow(track_fences=True)
        findings = []
        for instr, (has_before, has_after) in fence_info.items():
            if has_before and has_after:
                continue
            position = self._positions.get(instr)
            if position is None:
                continue
            function, block_label, index = position
            if not has_before and not has_after:
                reason = "no shared access on either side on any path"
            elif not has_before:
                reason = "no shared access before it on any path"
            else:
                reason = "no shared access after it on any path"
            findings.append({
                "function": function,
                "block": block_label,
                "index": index,
                "order": instr.order.name.lower(),
                "reason": reason,
            })
        findings.sort(key=lambda f: (f["function"], f["block"], f["index"]))
        return findings


def _join(state_a, state_b):
    if state_a is None:
        return state_b
    return (
        state_a[0] | state_b[0],
        state_a[1] | state_b[1],
        state_a[2] or state_b[2],
        state_a[3] | state_b[3],
    )


def _halves(instr):
    if isinstance(instr, ins.Load):
        return (("load", False),)
    if isinstance(instr, ins.Store):
        return (("store", True),)
    if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
        return (("rmw", False), ("rmw_store", True))
    return ()


def _pair_locations_differ(a, b):
    """May a and b touch different locations?  (Same-location pairs are
    coherence-ordered in every model and never appear as the po edges
    of a minimal critical cycle.)"""
    if a.nid == b.nid:
        return False
    if a.key is None or b.key is None:
        return a.instr is not b.instr
    return a.key != b.key


def _distinct_instances(function_a, function_b, contexts):
    """Can the two functions run in two different thread instances?"""
    roots_reaching, multiplicity = contexts
    roots_a = roots_reaching.get(function_a, set())
    roots_b = roots_reaching.get(function_b, set())
    if not roots_a or not roots_b:
        return False
    if roots_a != roots_b or len(roots_a) >= 2:
        return True
    return any(multiplicity.get(root, 0) >= 2 for root in roots_a)


def _live_function_names(module, callgraph):
    from repro.analysis.races import _live_functions

    return _live_functions(module, callgraph)


def _instruction_positions(module):
    positions = {}
    for function in module.functions.values():
        for block in function.blocks:
            for index, instr in enumerate(block.instructions):
                positions[instr] = (function.name, block.label, index)
    return positions


def analyze_robustness(module, model="wmm", cache=None, max_witnesses=5,
                       name_heuristic=True):
    """One-shot robustness classification of ``module`` under ``model``."""
    analyzer = RobustnessAnalyzer(
        module, model=model, cache=cache, name_heuristic=name_heuristic
    )
    return analyzer.analyze(max_witnesses=max_witnesses)


def find_dead_fences(module, cache=None, name_heuristic=True):
    """Dead-fence lint findings for ``module`` (wmm ordering rules)."""
    analyzer = RobustnessAnalyzer(
        module, model="wmm", cache=cache, name_heuristic=name_heuristic
    )
    return analyzer.dead_fences()
