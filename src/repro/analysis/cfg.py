"""Control-flow graph utilities over IR functions."""


def predecessors(function):
    """Map each block to the list of its predecessor blocks."""
    preds = {block: [] for block in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            preds[successor].append(block)
    return preds


def reverse_postorder(function):
    """Blocks in reverse postorder from the entry (unreachable excluded)."""
    visited = set()
    order = []
    # Iterative DFS to avoid recursion limits on generated code.
    stack = [(function.entry, iter(function.entry.successors()))]
    visited.add(function.entry)
    while stack:
        block, successors = stack[-1]
        advanced = False
        for successor in successors:
            if successor not in visited:
                visited.add(successor)
                stack.append((successor, iter(successor.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def reachable_blocks(function):
    """The set of blocks reachable from the entry block."""
    seen = set()
    worklist = [function.entry]
    while worklist:
        block = worklist.pop()
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(block.successors())
    return seen
