"""Backward liveness over the IR CFG, driving the machine's env GC.

The model checker's per-frame environment used to keep every executed
instruction's result until the frame returned, so frame envs grew with
the number of *distinct instructions executed* — and every state
encode, canonical form and copy-on-write frame clone paid O(that).
Almost all of those values are dead: a typical spin-loop body keeps
two or three registers live at any point.

This module computes, per function:

- ``dies[id(instr)]`` — the env keys (operand value ids) whose last use
  is ``instr``: once it has executed, no path through the CFG can read
  them again, so the machine deletes them from the frame env.
- ``unused`` — ids of instructions whose result no instruction ever
  reads: the machine skips the env write entirely (stores, fences,
  asserts and fire-and-forget calls all fall in this bucket).

Soundness: liveness is a may-analysis over the union of CFG successors,
so a value kept live on *any* outgoing path is kept on all of them —
the env can only over-approximate the live set, never lose a value that
is still read (the fixpoint propagates uses around loop back-edges).
Dropping dead values coarsens the state partition of the explorer's
canonical form — states that differ only in unreadable registers now
dedup together — which is a bisimulation-preserving abstraction: a
dead value can never influence a future transition, an assertion, or
an output.  Both exploration engines consult the same tables, so their
verdicts and state counts stay identical.

``Ret`` instructions get an empty death list by construction: the whole
frame is discarded on return, and the popped frame may still be shared
copy-on-write with other states, so the machine must not write to it.
"""

from repro.ir import instructions as ins
from repro.ir.values import Argument


def _operand_ids(instr):
    """ids of the operands that live in a frame env (values, arguments)."""
    return [
        id(operand) for operand in instr.operands
        if isinstance(operand, (ins.Instruction, Argument))
    ]


def liveness_tables(function):
    """``(dies, unused)`` for one function (see module docstring)."""
    blocks = function.blocks
    if not blocks:
        return {}, set()

    # Block-level gen/kill: gen = values read before (re)definition,
    # kill = values defined in the block.
    gen = {}
    kill = {}
    for block in blocks:
        bgen, bkill = set(), set()
        for instr in block.instructions:
            for oid in _operand_ids(instr):
                if oid not in bkill:
                    bgen.add(oid)
            bkill.add(id(instr))
        key = id(block)
        gen[key] = bgen
        kill[key] = bkill

    # Classic backward fixpoint: live_out = union of successor live_in.
    live_in = {id(block): set() for block in blocks}
    live_out = {id(block): set() for block in blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            key = id(block)
            out = set()
            for successor in block.successors():
                out |= live_in[id(successor)]
            if out != live_out[key]:
                live_out[key] = out
                changed = True
            new_in = gen[key] | (out - kill[key])
            if new_in != live_in[key]:
                live_in[key] = new_in
                changed = True

    # Death points: one backward walk per block over the solved live-out.
    dies = {}
    for block in blocks:
        live = set(live_out[id(block)])
        for instr in reversed(block.instructions):
            iid = id(instr)
            live.discard(iid)
            dead_here = []
            for oid in _operand_ids(instr):
                if oid not in live:
                    dead_here.append(oid)
                    live.add(oid)
            # Returns discard the whole frame; never touch it post-pop.
            dies[iid] = () if isinstance(instr, ins.Ret) else tuple(dead_here)

    used = set()
    for instr in function.instructions():
        used.update(_operand_ids(instr))
    unused = {
        id(instr) for instr in function.instructions() if id(instr) not in used
    }
    return dies, unused
