"""Call graph with recursion detection and per-site provenance.

Besides the caller/callee edge sets used by the pre-inlining pass, the
graph records every call *site* — (caller, block, instruction index) —
so context-sensitive interprocedural passes (e.g. the lockset analysis)
can evaluate the dataflow state *at* each site rather than merging all
calls of a function into one edge.
"""

from dataclasses import dataclass

from repro.ir import instructions as ins


@dataclass(frozen=True)
class CallSite:
    """One direct call (or thread spawn) with its exact position."""

    caller: str
    callee: str
    block_label: str
    #: Index of the call instruction within its block.
    index: int
    #: The Call / ThreadCreate instruction itself.
    instr: object

    def __repr__(self):
        return (
            f"CallSite(@{self.caller}/{self.block_label}[{self.index}] "
            f"-> @{self.callee})"
        )


class CallGraph:
    """Static call graph of a module (direct calls only)."""

    def __init__(self, module):
        self.module = module
        self.callees = {name: set() for name in module.functions}
        self.callers = {name: set() for name in module.functions}
        self.thread_entries = set()
        #: All direct call sites, in block order per function.
        self.call_sites = []
        #: Thread spawn sites (ThreadCreate), with the same provenance.
        self.spawn_sites = []
        for function in module.functions.values():
            for block in function.blocks:
                for index, instr in enumerate(block.instructions):
                    if isinstance(instr, ins.Call):
                        site = CallSite(
                            function.name, instr.callee.name,
                            block.label, index, instr,
                        )
                        self.call_sites.append(site)
                        self.callees[function.name].add(instr.callee.name)
                        self.callers[instr.callee.name].add(function.name)
                    elif isinstance(instr, ins.ThreadCreate):
                        self.spawn_sites.append(CallSite(
                            function.name, instr.callee.name,
                            block.label, index, instr,
                        ))
                        self.thread_entries.add(instr.callee.name)

    def sites_of(self, callee):
        """All call sites whose target is ``callee`` (spawns excluded)."""
        return [site for site in self.call_sites if site.callee == callee]

    def sites_in(self, caller):
        """All call sites located inside ``caller``, in block order."""
        return [site for site in self.call_sites if site.caller == caller]

    def recursive_functions(self):
        """Names of functions in call-graph cycles (incl. self-recursion)."""
        index_counter = [0]
        indices, lowlink = {}, {}
        on_stack, stack = set(), []
        recursive = set()

        def strongconnect(node):
            work = [(node, iter(sorted(self.callees[node])))]
            indices[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, children = work[-1]
                advanced = False
                for child in children:
                    if child not in indices:
                        indices[child] = lowlink[child] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(self.callees[child]))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[current] = min(lowlink[current], indices[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == indices[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        recursive.update(component)
                    elif current in self.callees[current]:
                        recursive.add(current)

        for name in self.module.functions:
            if name not in indices:
                strongconnect(name)
        return recursive

    def bottom_up_order(self):
        """Function names ordered callees-first (cycles broken arbitrarily)."""
        visited = set()
        order = []

        for name in sorted(self.module.functions):
            if name in visited:
                continue
            stack = [(name, iter(sorted(self.callees[name])))]
            visited.add(name)
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in visited:
                        visited.add(child)
                        stack.append((child, iter(sorted(self.callees[child]))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()
        return order
