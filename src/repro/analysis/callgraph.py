"""Call graph with recursion detection, used by the pre-inlining pass."""

from repro.ir import instructions as ins


class CallGraph:
    """Static call graph of a module (direct calls only)."""

    def __init__(self, module):
        self.module = module
        self.callees = {name: set() for name in module.functions}
        self.callers = {name: set() for name in module.functions}
        self.thread_entries = set()
        for function in module.functions.values():
            for instr in function.instructions():
                if isinstance(instr, ins.Call):
                    self.callees[function.name].add(instr.callee.name)
                    self.callers[instr.callee.name].add(function.name)
                elif isinstance(instr, ins.ThreadCreate):
                    self.thread_entries.add(instr.callee.name)

    def recursive_functions(self):
        """Names of functions in call-graph cycles (incl. self-recursion)."""
        index_counter = [0]
        indices, lowlink = {}, {}
        on_stack, stack = set(), []
        recursive = set()

        def strongconnect(node):
            work = [(node, iter(sorted(self.callees[node])))]
            indices[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, children = work[-1]
                advanced = False
                for child in children:
                    if child not in indices:
                        indices[child] = lowlink[child] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(self.callees[child]))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[current] = min(lowlink[current], indices[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == indices[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        recursive.update(component)
                    elif current in self.callees[current]:
                        recursive.add(current)

        for name in self.module.functions:
            if name not in indices:
                strongconnect(name)
        return recursive

    def bottom_up_order(self):
        """Function names ordered callees-first (cycles broken arbitrarily)."""
        visited = set()
        order = []

        for name in sorted(self.module.functions):
            if name in visited:
                continue
            stack = [(name, iter(sorted(self.callees[name])))]
            visited.add(name)
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in visited:
                        visited.add(child)
                        stack.append((child, iter(sorted(self.callees[child]))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()
        return order
