"""Natural-loop detection (§3.3: "a loop is identified by its loop header").

A back edge is an edge ``u -> h`` where ``h`` dominates ``u``.  The
natural loop of the back edge contains ``h`` plus every node that can
reach ``u`` without passing through ``h``.  Loops sharing a header are
merged, as in LLVM's LoopInfo.
"""

from repro.analysis.cfg import predecessors
from repro.analysis.dominators import DominatorTree
from repro.ir.instructions import CondBr


class Loop:
    """One natural loop: header block, body set, and its exits."""

    def __init__(self, header, body):
        self.header = header
        self.body = body  # set of blocks, includes header

    def exit_edges(self):
        """All ``(block, successor)`` edges leaving the loop."""
        edges = []
        for block in self.body:
            for successor in block.successors():
                if successor not in self.body:
                    edges.append((block, successor))
        return edges

    def exit_conditions(self):
        """The condition values controlling each loop exit.

        For an exit edge taken by a conditional branch, that branch's
        condition.  For an unconditional exit (e.g. a ``break`` block),
        the conditions of the in-loop conditional branches that lead to
        it, found by walking predecessors until conditional branches are
        reached — an approximation of control dependence adequate for
        ``-O0``-shaped CFGs.
        """
        conditions = []
        seen = set()
        preds = None
        for block, _successor in self.exit_edges():
            terminator = block.terminator
            if isinstance(terminator, CondBr):
                if terminator not in seen:
                    seen.add(terminator)
                    conditions.append(terminator.cond)
                continue
            if preds is None:
                preds = predecessors(self.header.function)
            worklist = [block]
            visited = set()
            while worklist:
                current = worklist.pop()
                if current in visited:
                    continue
                visited.add(current)
                for pred in preds[current]:
                    if pred not in self.body:
                        continue
                    pterm = pred.terminator
                    if isinstance(pterm, CondBr):
                        if pterm not in seen:
                            seen.add(pterm)
                            conditions.append(pterm.cond)
                    else:
                        worklist.append(pred)
        return conditions

    def instructions(self):
        for block in self.body:
            yield from block.instructions

    def contains(self, instr):
        return instr.block in self.body

    def __repr__(self):
        labels = sorted(block.label for block in self.body)
        return f"Loop(header={self.header.label}, body={labels})"


def find_loops(function, domtree=None):
    """Find all natural loops in ``function``; returns a list of Loops."""
    domtree = domtree or DominatorTree(function)
    preds = predecessors(function)
    loops_by_header = {}
    for block in function.blocks:
        for successor in block.successors():
            if successor in domtree.idom and domtree.dominates(successor, block):
                body = loops_by_header.setdefault(successor, {successor})
                _collect_body(block, successor, preds, body)
    return [Loop(header, body) for header, body in loops_by_header.items()]


def _collect_body(latch, header, preds, body):
    worklist = [latch]
    while worklist:
        block = worklist.pop()
        if block in body:
            continue
        body.add(block)
        worklist.extend(preds[block])
