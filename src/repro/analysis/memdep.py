"""Scoped memory-dependence analysis for stack slots.

Implements the paper's "fine-grained memory dependency analysis, i.e.,
scoped within a few specified basic blocks, a loop or at most within a
function" (§3.5).  Queries ask which in-region stores to a local alloca
may reach a given load; results are cached per (alloca, region), also as
the paper describes.
"""

from repro.analysis.cfg import predecessors
from repro.analysis.nonlocal_ import pointer_root
from repro.ir import instructions as ins


class MemoryDependence:
    """Reaching-store queries for one function."""

    def __init__(self, function):
        self.function = function
        self._preds = predecessors(function)
        self._stores_by_alloca = self._index_stores()
        self._cache = {}

    def _index_stores(self):
        index = {}
        for instr in self.function.instructions():
            if isinstance(instr, ins.Store):
                root = pointer_root(instr.pointer)
                if isinstance(root, ins.Alloca):
                    index.setdefault(root, []).append(instr)
        return index

    def stores_to(self, alloca):
        """All stores in the function whose pointer is rooted at ``alloca``."""
        return list(self._stores_by_alloca.get(alloca, ()))

    def reaching_stores(self, load, region):
        """In-region stores to the load's alloca that may reach ``load``.

        ``region`` is a set of blocks (e.g. a loop body).  Stores outside
        the region are deliberately excluded: spinloop analysis only asks
        whether *in-loop* stores influence the exit conditions.
        """
        alloca = pointer_root(load.pointer)
        if not isinstance(alloca, ins.Alloca):
            return set()
        region_key = frozenset(region)
        cache_key = (alloca, region_key)
        block_out = self._cache.get(cache_key)
        if block_out is None:
            block_out = self._dataflow(alloca, region_key)
            self._cache[cache_key] = block_out

        block = load.block
        if block not in region_key:
            return set()
        live = set()
        for pred in self._preds[block]:
            if pred in region_key:
                live |= block_out[pred]
        for instr in block.instructions:
            if instr is load:
                return live
            live = self._transfer(instr, alloca, live)
        return live

    def _dataflow(self, alloca, region):
        """Per-block OUT sets of may-reaching stores to ``alloca``."""
        block_out = {block: set() for block in region}
        changed = True
        while changed:
            changed = False
            for block in region:
                live = set()
                for pred in self._preds[block]:
                    if pred in region:
                        live |= block_out[pred]
                for instr in block.instructions:
                    live = self._transfer(instr, alloca, live)
                if live != block_out[block]:
                    block_out[block] = live
                    changed = True
        return block_out

    @staticmethod
    def _transfer(instr, alloca, live):
        if isinstance(instr, ins.Store) and pointer_root(instr.pointer) is alloca:
            if instr.pointer is alloca:
                # Exact overwrite of the slot: kills earlier stores.
                return {instr}
            # Partial (gep-based) store: generates without killing.
            return live | {instr}
        return live
