"""Core IR value classes: constants, globals and function arguments."""

from repro.lang.ctypes import INT, PointerType


class Value:
    """Base class of everything that can appear as an instruction operand."""

    def __init__(self, ctype, name=None):
        self.ctype = ctype
        self.name = name

    def short(self):
        """Compact printable form used inside instruction operands."""
        return self.name or repr(self)


class Constant(Value):
    """An integer (or null-pointer) constant."""

    def __init__(self, value, ctype=INT):
        super().__init__(ctype)
        self.value = value

    def short(self):
        return str(self.value)

    def __repr__(self):
        return f"Constant({self.value})"

    def __eq__(self, other):
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))


class GlobalVar(Value):
    """A module-level variable.

    ``initializer`` is a flat list of slot values (length == type size).
    The ``volatile`` and ``atomic`` flags record the source qualifiers the
    explicit-annotation pass consumes.
    """

    def __init__(self, name, ctype, initializer=None, volatile=False, atomic=False):
        super().__init__(PointerType(ctype), name)
        self.value_type = ctype
        size = max(ctype.size, 1)
        if initializer is None:
            initializer = [0] * size
        if len(initializer) < size:
            initializer = list(initializer) + [0] * (size - len(initializer))
        self.initializer = list(initializer)
        self.volatile = volatile
        self.atomic = atomic

    def short(self):
        return f"@{self.name}"

    def __repr__(self):
        quals = []
        if self.volatile:
            quals.append("volatile")
        if self.atomic:
            quals.append("atomic")
        qual = (" ".join(quals) + " ") if quals else ""
        return f"GlobalVar(@{self.name}: {qual}{self.value_type!r})"


class Argument(Value):
    """A formal parameter of a :class:`repro.ir.module.Function`."""

    def __init__(self, name, ctype, index, function=None):
        super().__init__(ctype, name)
        self.index = index
        self.function = function

    def short(self):
        return f"%{self.name}"

    def __repr__(self):
        return f"Argument(%{self.name}: {self.ctype!r})"
