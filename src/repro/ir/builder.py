"""Convenience builder used by the lowering pass to emit IR."""

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import Constant
from repro.lang.ctypes import INT


class IRBuilder:
    """Appends instructions to a current insertion block.

    Mirrors LLVM's ``IRBuilder``: every ``emit_*`` method creates the
    instruction, names its result, appends it to the current block, and
    returns it.
    """

    def __init__(self, function):
        self.function = function
        self.block = None

    def position_at_end(self, block):
        self.block = block
        return block

    def _append(self, instr, named=True):
        if self.block is None:
            raise IRError("builder has no insertion block")
        if self.block.terminator is not None:
            raise IRError(
                f"emitting into terminated block {self.block.label} "
                f"in @{self.function.name}"
            )
        if named and instr.name is None:
            instr.name = self.function.next_value_name()
        self.block.append(instr)
        return instr

    # -- helpers -----------------------------------------------------------

    def const(self, value):
        return Constant(value, INT)

    def is_terminated(self):
        return self.block is not None and self.block.terminator is not None

    # -- memory -------------------------------------------------------------

    def alloca(self, ctype, name=None):
        instr = ins.Alloca(ctype, name=name)
        return self._append(instr)

    def load(self, pointer, order=MemoryOrder.NOT_ATOMIC, volatile=False):
        return self._append(ins.Load(pointer, order, volatile))

    def store(self, pointer, value, order=MemoryOrder.NOT_ATOMIC, volatile=False):
        return self._append(ins.Store(pointer, value, order, volatile), named=False)

    def gep(self, base, path, result_type):
        return self._append(ins.Gep(base, path, result_type))

    def malloc(self, size):
        return self._append(ins.Malloc(size))

    def free(self, pointer):
        return self._append(ins.Free(pointer), named=False)

    # -- atomics -------------------------------------------------------------

    def cmpxchg(self, pointer, expected, desired, order=MemoryOrder.SEQ_CST):
        return self._append(ins.Cmpxchg(pointer, expected, desired, order))

    def atomicrmw(self, op, pointer, value, order=MemoryOrder.SEQ_CST):
        return self._append(ins.AtomicRMW(op, pointer, value, order))

    def fence(self, order=MemoryOrder.SEQ_CST):
        return self._append(ins.Fence(order), named=False)

    # -- computation -----------------------------------------------------------

    def binop(self, op, left, right):
        return self._append(ins.BinOp(op, left, right))

    def cast(self, value, to_type):
        return self._append(ins.Cast(value, to_type))

    # -- control flow ------------------------------------------------------------

    def br(self, target):
        return self._append(ins.Br(target), named=False)

    def cond_br(self, cond, true_block, false_block):
        return self._append(ins.CondBr(cond, true_block, false_block), named=False)

    def ret(self, value=None):
        return self._append(ins.Ret(value), named=False)

    def call(self, callee, args):
        named = not callee.return_type.is_void()
        return self._append(ins.Call(callee, args), named=named)

    # -- intrinsics ----------------------------------------------------------------

    def thread_create(self, callee, arg=None):
        return self._append(ins.ThreadCreate(callee, arg))

    def thread_join(self, tid):
        return self._append(ins.ThreadJoin(tid), named=False)

    def assert_(self, cond, message=""):
        return self._append(ins.AssertInst(cond, message), named=False)

    def print_(self, value):
        return self._append(ins.PrintInst(value), named=False)

    def sleep(self, duration):
        return self._append(ins.Sleep(duration), named=False)

    def compiler_barrier(self):
        return self._append(ins.CompilerBarrier(), named=False)
