"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

Supports the full printed syntax, so modules round-trip:

    parse_module(print_module(m))  ~  m      (same printed form)

This makes the IR a real interchange format: ``atomig port -o out.ir``
followed by offline inspection, or golden tests over printed IR.
Provenance that the printer does not emit (assert messages, source
lines) is not reconstructed.
"""

import re

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, GlobalVar
from repro.lang.ctypes import INT, VOID, ArrayType, PointerType, StructType

_GLOBAL_RE = re.compile(
    r"^global @(?P<name>\w+): (?P<quals>(?:volatile |atomic )*)"
    r"(?P<type>.+?) = (?P<init>.+)$"
)
_FUNC_RE = re.compile(
    r"^func @(?P<name>[\w.]+)\((?P<params>.*)\) -> (?P<ret>.+) \{$"
)
_STRUCT_RE = re.compile(r"^struct (?P<name>\w+) \{ (?P<fields>.*) \}$")
_LABEL_RE = re.compile(r"^(?P<label>[\w.\-]+):$")
_ORDER_NAMES = {order.name.lower(): order for order in MemoryOrder}


class IRParser:
    """Parses one printed module."""

    def __init__(self, text):
        self.lines = [line.rstrip() for line in text.splitlines()]
        self.index = 0
        self.module = Module()
        self.structs = {}

    # -- line plumbing ------------------------------------------------------

    def _next_line(self):
        while self.index < len(self.lines):
            line = self.lines[self.index]
            self.index += 1
            if line.strip():
                return line
        return None

    def _peek_line(self):
        index = self.index
        while index < len(self.lines):
            line = self.lines[index]
            if line.strip():
                return line
            index += 1
        return None

    # -- types ---------------------------------------------------------------

    def parse_type(self, text):
        text = text.strip()
        if text.startswith("struct"):
            match = re.match(r"^struct (\w+)", text)
            name = match.group(1)
            base = self._struct(name)
            rest = text[match.end():]
        elif text.startswith("int"):
            base = INT
            rest = text[3:]
        elif text.startswith("void"):
            base = VOID
            rest = text[4:]
        else:
            raise IRError(f"cannot parse type {text!r}")
        while rest:
            if rest.startswith("*"):
                base = PointerType(base)
                rest = rest[1:]
            elif rest.startswith("["):
                end = rest.index("]")
                base = ArrayType(base, int(rest[1:end]))
                rest = rest[end + 1:]
            else:
                raise IRError(f"trailing type text {rest!r}")
        return base

    def _struct(self, name):
        if name not in self.structs:
            self.structs[name] = StructType(name)
        return self.structs[name]

    # -- top level --------------------------------------------------------------

    def parse(self):
        pending_functions = []
        while True:
            line = self._next_line()
            if line is None:
                break
            stripped = line.strip()
            if stripped.startswith("; module"):
                self.module.name = stripped[len("; module"):].strip()
                continue
            match = _STRUCT_RE.match(stripped)
            if match:
                self._parse_struct(match)
                continue
            match = _GLOBAL_RE.match(stripped)
            if match:
                self._parse_global(match)
                continue
            match = _FUNC_RE.match(stripped)
            if match:
                pending_functions.append(self._scan_function(match))
                continue
            raise IRError(f"unexpected line {stripped!r}")
        # Two phases: create all shells first so calls resolve.
        for header, _body in pending_functions:
            self.module.add_function(header)
        for header, body in pending_functions:
            self._parse_body(header, body)
        self.module.struct_types = dict(self.structs)
        return self.module

    def _parse_struct(self, match):
        struct = self._struct(match.group("name"))
        fields = []
        text = match.group("fields").strip()
        if text:
            for part in _split_top(text):
                fname, ftype = part.split(":", 1)
                fields.append((fname.strip(), self.parse_type(ftype)))
        if not struct.complete:
            struct.define(fields)

    def _parse_global(self, match):
        quals = match.group("quals")
        ctype = self.parse_type(match.group("type"))
        init_text = match.group("init").strip()
        if init_text.startswith("["):
            initializer = [
                int(part) for part in init_text[1:-1].split(",") if part.strip()
            ]
        else:
            initializer = [int(init_text)]
        self.module.add_global(GlobalVar(
            match.group("name"),
            ctype,
            initializer,
            volatile="volatile" in quals,
            atomic="atomic" in quals,
        ))

    def _scan_function(self, match):
        """Read a function's raw body lines; build its shell."""
        param_names, param_types = [], []
        params_text = match.group("params").strip()
        if params_text:
            for part in _split_top(params_text):
                pname, ptype = part.split(":", 1)
                param_names.append(pname.strip().lstrip("%"))
                param_types.append(self.parse_type(ptype))
        function = Function(
            match.group("name"),
            self.parse_type(match.group("ret")),
            param_names,
            param_types,
        )
        body = []
        while True:
            line = self._next_line()
            if line is None:
                raise IRError(f"unterminated function @{function.name}")
            if line.strip() == "}":
                break
            body.append(line)
        return function, body

    # -- function bodies -------------------------------------------------------

    def _parse_body(self, function, body_lines):
        env = {f"%{arg.name}": arg for arg in function.arguments}
        blocks = {}
        order = []
        current = None
        # First pass: create blocks so branches can forward-reference.
        for line in body_lines:
            match = _LABEL_RE.match(line.strip())
            if match and not line.startswith(" "):
                label = match.group("label")
                block = BasicBlock(label, function)
                blocks[label] = block
                order.append(block)
        function.blocks = order
        branch_fixups = []
        for line in body_lines:
            stripped = line.strip()
            match = _LABEL_RE.match(stripped)
            if match and not line.startswith(" "):
                current = blocks[match.group("label")]
                continue
            if current is None:
                raise IRError(f"instruction before any label: {stripped!r}")
            marks = ()
            if ";" in stripped:
                stripped, comment = stripped.split(";", 1)
                stripped = stripped.strip()
                comment = comment.strip()
                if comment.startswith("marks:"):
                    marks = tuple(
                        m.strip() for m in comment[len("marks:"):].split(",")
                    )
            instr = self._parse_instruction(
                stripped, env, blocks, branch_fixups
            )
            instr.marks.update(marks)
            current.append(instr)
        return function

    # -- instructions -------------------------------------------------------------

    def _value(self, token, env):
        token = token.strip()
        if token.startswith("@"):
            gvar = self.module.globals.get(token[1:])
            if gvar is None:
                raise IRError(f"unknown global {token}")
            return gvar
        if token.startswith("%"):
            value = env.get(token)
            if value is None:
                raise IRError(f"use of undefined value {token}")
            return value
        return Constant(int(token), INT)

    def _parse_instruction(self, text, env, blocks, fixups):
        result_name = None
        if re.match(r"^%[\w.\-]+ = ", text):
            result_name, text = text.split(" = ", 1)
            result_name = result_name.strip()
        instr = self._parse_operation(text.strip(), env, blocks)
        if result_name is not None:
            instr.name = result_name.lstrip("%")
            env[result_name] = instr
        return instr

    def _parse_operation(self, text, env, blocks):
        if text.startswith("alloca "):
            return ins.Alloca(self.parse_type(text[len("alloca "):]))
        if text.startswith("load"):
            return self._parse_load(text, env)
        if text.startswith("store"):
            return self._parse_store(text, env)
        if text.startswith("gep "):
            return self._parse_gep(text[4:], env)
        if text.startswith("malloc "):
            return ins.Malloc(self._value(text[7:], env))
        if text.startswith("free "):
            return ins.Free(self._value(text[5:], env))
        if text.startswith("cmpxchg "):
            body, order = text[len("cmpxchg "):].rsplit(" ", 1)
            pointer, expected, desired = [
                self._value(part, env) for part in _split_top(body)
            ]
            return ins.Cmpxchg(pointer, expected, desired,
                               _ORDER_NAMES[order])
        if text.startswith("atomicrmw "):
            rest = text[len("atomicrmw "):]
            op, rest = rest.split(" ", 1)
            body, order = rest.rsplit(" ", 1)
            pointer, value = [
                self._value(part, env) for part in _split_top(body)
            ]
            return ins.AtomicRMW(op, pointer, value, _ORDER_NAMES[order])
        if text.startswith("fence "):
            return ins.Fence(_ORDER_NAMES[text[len("fence "):]])
        if text.startswith("cast "):
            body = text[len("cast "):]
            value_text, type_text = body.split(" to ", 1)
            return ins.Cast(self._value(value_text, env),
                            self.parse_type(type_text))
        if text.startswith("br "):
            return self._parse_branch(text[3:], env, blocks)
        if text == "ret void":
            return ins.Ret()
        if text.startswith("ret "):
            return ins.Ret(self._value(text[4:], env))
        if text.startswith("call @") or " = call @" in text:
            return self._parse_call(text, env)
        if text.startswith("thread_create @"):
            return self._parse_thread_create(text, env)
        if text.startswith("thread_join "):
            return ins.ThreadJoin(self._value(text[len("thread_join "):], env))
        if text.startswith("assert "):
            return ins.AssertInst(self._value(text[len("assert "):], env))
        if text.startswith("print "):
            return ins.PrintInst(self._value(text[len("print "):], env))
        if text.startswith("sleep "):
            return ins.Sleep(self._value(text[len("sleep "):], env))
        if text == "compiler_barrier":
            return ins.CompilerBarrier()
        return self._parse_binop(text, env)

    def _parse_load(self, text, env):
        rest = text[len("load"):].strip()
        order, volatile, rest = self._access_mods(rest)
        return ins.Load(self._value(rest, env), order, volatile)

    def _parse_store(self, text, env):
        rest = text[len("store"):].strip()
        order, volatile, rest = self._access_mods(rest)
        value_text, pointer_text = rest.split(" -> ", 1)
        return ins.Store(
            self._value(pointer_text, env),
            self._value(value_text, env),
            order,
            volatile,
        )

    @staticmethod
    def _access_mods(rest):
        order = MemoryOrder.NOT_ATOMIC
        volatile = False
        changed = True
        while changed:
            changed = False
            match = re.match(r"^atomic\((\w+)\)\s+", rest)
            if match:
                order = _ORDER_NAMES[match.group(1)]
                rest = rest[match.end():]
                changed = True
            if rest.startswith("volatile "):
                volatile = True
                rest = rest[len("volatile "):]
                changed = True
        return order, volatile, rest

    def _parse_gep(self, text, env):
        base_token, rest = self._split_gep_base(text, env)
        base = self._value(base_token, env)
        path = []
        current_type = base.ctype
        while rest:
            if rest.startswith("."):
                match = re.match(r"^\.(\w+)", rest)
                field = match.group(1)
                struct = self._pointee(current_type)
                index = struct.field_index(field)
                path.append(("field", struct, index))
                current_type = PointerType(struct.fields[index][1])
                rest = rest[match.end():]
            elif rest.startswith("["):
                end = rest.index("]")
                operand = self._value(rest[1:end], env)
                element = self._element_of(current_type)
                path.append(("index", element, operand))
                current_type = PointerType(element)
                rest = rest[end + 1:]
            else:
                raise IRError(f"bad gep path {rest!r}")
        return ins.Gep(base, path, self._pointee(current_type))

    def _split_gep_base(self, text, env):
        """Split a gep body into (base token, path text).

        Value names may themselves contain dots (``%v.addr``,
        ``%inl.data.3``), so the base is the *longest* known value name
        that prefixes the text and is followed by a path step (``.`` or
        ``[``) or nothing.
        """
        candidates = []
        if text.startswith("@"):
            for name in self.module.globals:
                candidates.append(f"@{name}")
        else:
            candidates.extend(env)
        best = None
        for token in candidates:
            if not text.startswith(token):
                continue
            rest = text[len(token):]
            if rest and rest[0] not in ".[":
                continue
            if best is None or len(token) > len(best):
                best = token
        if best is None:
            raise IRError(f"bad gep base in {text!r}")
        return best, text[len(best):]

    @staticmethod
    def _pointee(ctype):
        if isinstance(ctype, PointerType):
            return ctype.pointee
        return ctype

    @staticmethod
    def _element_of(ctype):
        pointee = (
            ctype.pointee if isinstance(ctype, PointerType) else ctype
        )
        if isinstance(pointee, ArrayType):
            return pointee.element
        return pointee

    def _parse_branch(self, text, env, blocks):
        if " ? " in text:
            cond_text, arms = text.split(" ? ", 1)
            true_label, false_label = [
                part.strip() for part in arms.split(" : ", 1)
            ]
            return ins.CondBr(
                self._value(cond_text, env),
                blocks[true_label],
                blocks[false_label],
            )
        return ins.Br(blocks[text.strip()])

    def _parse_call(self, text, env):
        match = re.match(r"^call @([\w.\-]+)\((.*)\)$", text)
        callee = self.module.functions.get(match.group(1))
        if callee is None:
            raise IRError(f"call to unknown function @{match.group(1)}")
        args_text = match.group(2).strip()
        args = [
            self._value(part, env) for part in _split_top(args_text)
        ] if args_text else []
        return ins.Call(callee, args)

    def _parse_thread_create(self, text, env):
        match = re.match(r"^thread_create @([\w.\-]+)\((.*)\)$", text)
        callee = self.module.functions.get(match.group(1))
        if callee is None:
            raise IRError(
                f"thread_create of unknown function @{match.group(1)}"
            )
        arg_text = match.group(2).strip()
        arg = self._value(arg_text, env) if arg_text else None
        return ins.ThreadCreate(callee, arg)

    _BINOPS = sorted(
        ins.BinOp.ARITH | ins.BinOp.COMPARE, key=len, reverse=True
    )

    def _parse_binop(self, text, env):
        for op in self._BINOPS:
            separator = f" {op} "
            if separator in text:
                left_text, right_text = text.split(separator, 1)
                return ins.BinOp(
                    op,
                    self._value(left_text, env),
                    self._value(right_text, env),
                )
        raise IRError(f"cannot parse instruction {text!r}")


def _split_top(text):
    """Split on commas that are not nested inside brackets/parens."""
    parts, depth, start = [], 0, 0
    for index, char in enumerate(text):
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        elif char == "," and depth == 0:
            parts.append(text[start:index])
            start = index + 1
    tail = text[start:].strip()
    if tail:
        parts.append(tail)
    return parts


def parse_module(text):
    """Parse printed IR text back into a verified :class:`Module`."""
    from repro.ir.verifier import verify_module

    module = IRParser(text).parse()
    verify_module(module)
    return module
