"""IR containers: basic blocks, functions and modules.

A :class:`Module` corresponds to the paper's *link-time* unit: the whole
application linked into one IR module, which is the scope at which
AtoMig's alias exploration runs.
"""

import copy

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.values import Argument, Constant, GlobalVar


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, label, function=None):
        self.label = label
        self.function = function
        self.instructions = []

    def append(self, instr):
        self.instructions.append(instr)
        instr.block = self
        return instr

    def insert(self, index, instr):
        self.instructions.insert(index, instr)
        instr.block = self
        return instr

    @property
    def terminator(self):
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self):
        terminator = self.terminator
        if terminator is None:
            return []
        return terminator.successors()

    def __repr__(self):
        return f"BasicBlock({self.label}, {len(self.instructions)} instrs)"


class Function:
    """A function definition with its CFG of basic blocks."""

    def __init__(self, name, return_type, param_names, param_types):
        self.name = name
        self.return_type = return_type
        self.arguments = [
            Argument(pname, ptype, index, self)
            for index, (pname, ptype) in enumerate(zip(param_names, param_types))
        ]
        self.blocks = []
        self._label_counter = 0
        self._value_counter = 0

    @property
    def entry(self):
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, hint="bb"):
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        block = BasicBlock(label, self)
        self.blocks.append(block)
        return block

    def next_value_name(self):
        self._value_counter += 1
        return str(self._value_counter)

    def instructions(self):
        """Iterate over all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def block_map(self):
        return {block.label: block for block in self.blocks}

    def __repr__(self):
        return f"Function(@{self.name}, {len(self.blocks)} blocks)"


class Module:
    """A linked program: globals, struct types and function definitions."""

    def __init__(self, name="module"):
        self.name = name
        self.globals = {}
        self.functions = {}
        self.struct_types = {}
        #: Arbitrary metadata recorded by passes (e.g. porting reports).
        self.metadata = {}

    def add_global(self, global_var):
        if global_var.name in self.globals:
            raise IRError(f"duplicate global @{global_var.name}")
        self.globals[global_var.name] = global_var
        return global_var

    def add_function(self, function):
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        self.functions[function.name] = function
        return function

    def instructions(self):
        for function in self.functions.values():
            yield from function.instructions()

    # -- cloning ---------------------------------------------------------

    def clone(self):
        """Deep-copy the module so a porter can transform it in isolation.

        Globals, functions, blocks and instructions are all fresh
        objects; operand references are remapped onto their clones.
        Struct types are shared (they are immutable after sema).
        """
        new = Module(self.name)
        new.struct_types = self.struct_types
        new.metadata = copy.deepcopy(self.metadata)

        value_map = {}
        for gvar in self.globals.values():
            cloned = GlobalVar(
                gvar.name,
                gvar.value_type,
                list(gvar.initializer),
                volatile=gvar.volatile,
                atomic=gvar.atomic,
            )
            new.add_global(cloned)
            value_map[gvar] = cloned

        # First create empty function shells so calls can be remapped.
        for fn in self.functions.values():
            shell = Function(
                fn.name,
                fn.return_type,
                [arg.name for arg in fn.arguments],
                [arg.ctype for arg in fn.arguments],
            )
            new.add_function(shell)
            for old_arg, new_arg in zip(fn.arguments, shell.arguments):
                value_map[old_arg] = new_arg

        for fn in self.functions.values():
            _clone_function_body(fn, new.functions[fn.name], new, value_map)
        return new


def _clone_function_body(source, target, new_module, value_map):
    block_map = {}
    for block in source.blocks:
        clone = BasicBlock(block.label, target)
        target.blocks.append(clone)
        block_map[block] = clone
    target._label_counter = source._label_counter
    target._value_counter = source._value_counter

    def map_value(value):
        if value is None or isinstance(value, Constant):
            return value
        mapped = value_map.get(value)
        if mapped is None:
            raise IRError(
                f"clone: unmapped operand {value!r} in @{source.name}"
            )
        return mapped

    # Allocas first: they are operand-free, and transforms (inlining,
    # porters) may leave a use in an earlier-ordered block than its
    # alloca, which the single in-order pass below cannot remap.
    for block in source.blocks:
        for instr in block.instructions:
            if isinstance(instr, ins.Alloca) and instr not in value_map:
                value_map[instr] = ins.Alloca(instr.allocated_type)

    for block in source.blocks:
        clone_block = block_map[block]
        for instr in block.instructions:
            cloned = value_map.get(instr)
            if cloned is None:
                cloned = _clone_instruction(
                    instr, map_value, block_map, new_module
                )
            cloned.source_line = instr.source_line
            cloned.marks = set(instr.marks)
            cloned.name = instr.name
            clone_block.append(cloned)
            value_map[instr] = cloned


def _clone_instruction(instr, map_value, block_map, new_module):
    if isinstance(instr, ins.Alloca):
        return ins.Alloca(instr.allocated_type)
    if isinstance(instr, ins.Load):
        return ins.Load(
            map_value(instr.pointer), instr.order, instr.volatile
        )
    if isinstance(instr, ins.Store):
        return ins.Store(
            map_value(instr.pointer),
            map_value(instr.value),
            instr.order,
            instr.volatile,
        )
    if isinstance(instr, ins.Gep):
        path = [
            (step[0], step[1], map_value(step[2]))
            if step[0] == "index"
            else step
            for step in instr.path
        ]
        return ins.Gep(map_value(instr.base), path, instr.result_pointee)
    if isinstance(instr, ins.Malloc):
        return ins.Malloc(map_value(instr.size))
    if isinstance(instr, ins.Free):
        return ins.Free(map_value(instr.pointer))
    if isinstance(instr, ins.Cmpxchg):
        return ins.Cmpxchg(
            map_value(instr.pointer),
            map_value(instr.expected),
            map_value(instr.desired),
            instr.order,
        )
    if isinstance(instr, ins.AtomicRMW):
        return ins.AtomicRMW(
            instr.op, map_value(instr.pointer), map_value(instr.value), instr.order
        )
    if isinstance(instr, ins.Fence):
        return ins.Fence(instr.order)
    if isinstance(instr, ins.BinOp):
        return ins.BinOp(instr.op, map_value(instr.left), map_value(instr.right))
    if isinstance(instr, ins.Cast):
        return ins.Cast(map_value(instr.value), instr.ctype)
    if isinstance(instr, ins.Br):
        return ins.Br(block_map[instr.target])
    if isinstance(instr, ins.CondBr):
        return ins.CondBr(
            map_value(instr.cond),
            block_map[instr.true_block],
            block_map[instr.false_block],
        )
    if isinstance(instr, ins.Ret):
        return ins.Ret(map_value(instr.value) if instr.has_value else None)
    if isinstance(instr, ins.Call):
        callee = new_module.functions[instr.callee.name]
        return ins.Call(callee, [map_value(arg) for arg in instr.args])
    if isinstance(instr, ins.ThreadCreate):
        callee = new_module.functions[instr.callee.name]
        return ins.ThreadCreate(
            callee, map_value(instr.arg) if instr.arg is not None else None
        )
    if isinstance(instr, ins.ThreadJoin):
        return ins.ThreadJoin(map_value(instr.tid))
    if isinstance(instr, ins.AssertInst):
        return ins.AssertInst(map_value(instr.cond), instr.message)
    if isinstance(instr, ins.PrintInst):
        return ins.PrintInst(map_value(instr.value))
    if isinstance(instr, ins.Sleep):
        return ins.Sleep(map_value(instr.duration))
    if isinstance(instr, ins.CompilerBarrier):
        return ins.CompilerBarrier()
    raise IRError(f"clone: unhandled instruction {type(instr).__name__}")
