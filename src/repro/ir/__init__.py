"""LLVM-like intermediate representation.

The IR mirrors the subset of LLVM that AtoMig's passes inspect: typed
memory instructions with C11 memory orders, ``getelementptr``-style
address computation that records struct types and field offsets, atomic
read-modify-write operations, fences, and an unoptimized (``-O0``-style)
alloca-per-variable representation of locals, exactly as the paper's
initial compilation step produces.
"""

from repro.ir.instructions import (
    Alloca,
    CompilerBarrier,
    Sleep,
    AssertInst,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    Cmpxchg,
    CondBr,
    Fence,
    Free,
    Gep,
    Instruction,
    Load,
    Malloc,
    MemoryOrder,
    PrintInst,
    Ret,
    Store,
    ThreadCreate,
    ThreadJoin,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Argument, Constant, GlobalVar, Value
from repro.ir.builder import IRBuilder
from repro.ir.parser import parse_module
from repro.ir.printer import print_function, print_module
from repro.ir.verifier import verify_module

__all__ = [
    "Alloca",
    "Argument",
    "AssertInst",
    "AtomicRMW",
    "BasicBlock",
    "BinOp",
    "Br",
    "Call",
    "Cast",
    "CompilerBarrier",
    "Cmpxchg",
    "CondBr",
    "Constant",
    "Fence",
    "Free",
    "Function",
    "Gep",
    "GlobalVar",
    "IRBuilder",
    "Instruction",
    "Load",
    "Malloc",
    "MemoryOrder",
    "Module",
    "PrintInst",
    "Ret",
    "Sleep",
    "Store",
    "ThreadCreate",
    "ThreadJoin",
    "Value",
    "parse_module",
    "print_function",
    "print_module",
    "verify_module",
]
