"""IR instruction set.

Each instruction is itself a :class:`Value` (its result).  Operands are
held in ``self.operands`` so passes can rewrite them uniformly via
:meth:`Instruction.replace_operand`.

Memory instructions carry a :class:`MemoryOrder`; ``NOT_ATOMIC`` denotes
plain accesses.  AtoMig's transformation upgrades orders in place, and
also records provenance marks (``spin_control``, ``optimistic_control``,
``sticky``, ``annotation``) in :attr:`Instruction.marks` so reports and
tests can explain *why* an access was strengthened.
"""

import enum

from repro.ir.values import Value
from repro.lang.ctypes import INT, VOID, PointerType


class MemoryOrder(enum.IntEnum):
    """C11-style memory orders, ordered by strength."""

    NOT_ATOMIC = 0
    RELAXED = 1
    CONSUME = 2
    ACQUIRE = 3
    RELEASE = 4
    ACQ_REL = 5
    SEQ_CST = 6

    @property
    def is_atomic(self):
        return self is not MemoryOrder.NOT_ATOMIC

    @property
    def has_acquire(self):
        return self in (
            MemoryOrder.ACQUIRE,
            MemoryOrder.ACQ_REL,
            MemoryOrder.SEQ_CST,
            MemoryOrder.CONSUME,
        )

    @property
    def has_release(self):
        return self in (MemoryOrder.RELEASE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)


#: Memory orders as spelled by the C11 ``memory_order_*`` constants
#: (indexed by their integer value in :data:`repro.lang.sema.MEMORY_ORDER_CONSTANTS`).
C11_ORDER_BY_VALUE = {
    0: MemoryOrder.RELAXED,
    1: MemoryOrder.CONSUME,
    2: MemoryOrder.ACQUIRE,
    3: MemoryOrder.RELEASE,
    4: MemoryOrder.ACQ_REL,
    5: MemoryOrder.SEQ_CST,
}


class Instruction(Value):
    """Base class for all IR instructions."""

    #: Class-level opcode string, overridden by subclasses.
    opcode = "instr"
    #: True for instructions that end a basic block.
    is_terminator = False

    def __init__(self, ctype=VOID, operands=(), name=None):
        super().__init__(ctype, name)
        self.operands = list(operands)
        self.block = None
        self.source_line = None
        #: Provenance marks added by AtoMig passes.
        self.marks = set()

    # -- operand plumbing -------------------------------------------------

    def replace_operand(self, old, new):
        """Replace every occurrence of ``old`` among the operands."""
        for index, operand in enumerate(self.operands):
            if operand is old:
                self.operands[index] = new

    @property
    def function(self):
        return self.block.function if self.block is not None else None

    # -- classification ----------------------------------------------------

    def is_memory_access(self):
        """True for instructions that read or write program memory."""
        return False

    def accessed_pointer(self):
        """The pointer operand of a memory access, or None."""
        return None

    def short(self):
        return f"%{self.name}" if self.name else f"%{id(self) & 0xFFFF:x}"

    def __repr__(self):
        ops = ", ".join(op.short() for op in self.operands)
        return f"{self.short()} = {self.opcode} {ops}"


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------


class Alloca(Instruction):
    """Stack slot for a local variable (``-O0`` style: one per variable)."""

    opcode = "alloca"

    def __init__(self, allocated_type, name=None):
        super().__init__(PointerType(allocated_type), (), name)
        self.allocated_type = allocated_type

    def __repr__(self):
        return f"{self.short()} = alloca {self.allocated_type!r}"


class Load(Instruction):
    opcode = "load"

    def __init__(self, pointer, order=MemoryOrder.NOT_ATOMIC, volatile=False, name=None):
        pointee = pointer.ctype.pointee if isinstance(pointer.ctype, PointerType) else INT
        super().__init__(pointee, (pointer,), name)
        self.order = order
        self.volatile = volatile

    @property
    def pointer(self):
        return self.operands[0]

    def is_memory_access(self):
        return True

    def accessed_pointer(self):
        return self.pointer

    def __repr__(self):
        mods = _access_mods(self)
        return f"{self.short()} = load{mods} {self.pointer.short()}"


class Store(Instruction):
    opcode = "store"

    def __init__(self, pointer, value, order=MemoryOrder.NOT_ATOMIC, volatile=False):
        super().__init__(VOID, (pointer, value))
        self.order = order
        self.volatile = volatile

    @property
    def pointer(self):
        return self.operands[0]

    @property
    def value(self):
        return self.operands[1]

    def is_memory_access(self):
        return True

    def accessed_pointer(self):
        return self.pointer

    def __repr__(self):
        mods = _access_mods(self)
        return f"store{mods} {self.value.short()} -> {self.pointer.short()}"


class Gep(Instruction):
    """``getelementptr``: address of a struct field or array element.

    ``path`` is a list of steps:

    - ``("field", struct_type, field_index)`` — constant field selection;
    - ``("index", element_type, value)`` — dynamic element selection
      (the value is also appended to ``operands``).

    The *signature* (struct name + slot offset, or element type) drives
    AtoMig's type-based alias exploration (§3.4 of the paper).
    """

    opcode = "gep"

    def __init__(self, base, path, result_type, name=None):
        operands = [base]
        for step in path:
            if step[0] == "index":
                operands.append(step[2])
        super().__init__(PointerType(result_type), operands, name)
        self.path = list(path)
        self.result_pointee = result_type

    @property
    def base(self):
        return self.operands[0]

    def signature(self):
        """Hashable type-and-offset key for sticky-buddy matching."""
        parts = []
        for step in self.path:
            if step[0] == "field":
                struct_type, field_index = step[1], step[2]
                offset = sum(
                    ftype.size for _, ftype in struct_type.fields[:field_index]
                )
                parts.append(("field", struct_type.name, offset))
            else:
                parts.append(("index", repr(step[1])))
        return tuple(parts)

    def replace_operand(self, old, new):
        super().replace_operand(old, new)
        self.path = [
            (step[0], step[1], new)
            if step[0] == "index" and step[2] is old
            else step
            for step in self.path
        ]

    def __repr__(self):
        steps = []
        for step in self.path:
            if step[0] == "field":
                steps.append(f".{step[1].fields[step[2]][0]}")
            else:
                steps.append(f"[{step[2].short()}]")
        return f"{self.short()} = gep {self.base.short()}{''.join(steps)}"


class Malloc(Instruction):
    """Heap allocation of ``size`` slots (dynamic)."""

    opcode = "malloc"

    def __init__(self, size, name=None):
        super().__init__(PointerType(INT), (size,), name)

    @property
    def size(self):
        return self.operands[0]

    def __repr__(self):
        return f"{self.short()} = malloc {self.size.short()}"


class Free(Instruction):
    opcode = "free"

    def __init__(self, pointer):
        super().__init__(VOID, (pointer,))

    @property
    def pointer(self):
        return self.operands[0]

    def __repr__(self):
        return f"free {self.pointer.short()}"


# ---------------------------------------------------------------------------
# Atomics
# ---------------------------------------------------------------------------


class Cmpxchg(Instruction):
    """Atomic compare-exchange; the result is the *old* value."""

    opcode = "cmpxchg"

    def __init__(self, pointer, expected, desired, order=MemoryOrder.SEQ_CST, name=None):
        pointee = pointer.ctype.pointee if isinstance(pointer.ctype, PointerType) else INT
        super().__init__(pointee, (pointer, expected, desired), name)
        self.order = order
        self.volatile = False

    @property
    def pointer(self):
        return self.operands[0]

    @property
    def expected(self):
        return self.operands[1]

    @property
    def desired(self):
        return self.operands[2]

    def is_memory_access(self):
        return True

    def accessed_pointer(self):
        return self.pointer

    def __repr__(self):
        return (
            f"{self.short()} = cmpxchg {self.pointer.short()}, "
            f"{self.expected.short()}, {self.desired.short()} "
            f"{self.order.name.lower()}"
        )


class AtomicRMW(Instruction):
    """Atomic read-modify-write; the result is the *old* value."""

    opcode = "atomicrmw"

    OPS = ("add", "sub", "or", "and", "xor", "xchg")

    def __init__(self, op, pointer, value, order=MemoryOrder.SEQ_CST, name=None):
        assert op in self.OPS, op
        pointee = pointer.ctype.pointee if isinstance(pointer.ctype, PointerType) else INT
        super().__init__(pointee, (pointer, value), name)
        self.op = op
        self.order = order
        self.volatile = False

    @property
    def pointer(self):
        return self.operands[0]

    @property
    def value(self):
        return self.operands[1]

    def is_memory_access(self):
        return True

    def accessed_pointer(self):
        return self.pointer

    def __repr__(self):
        return (
            f"{self.short()} = atomicrmw {self.op} {self.pointer.short()}, "
            f"{self.value.short()} {self.order.name.lower()}"
        )


class Fence(Instruction):
    """Stand-alone (explicit) memory barrier."""

    opcode = "fence"

    def __init__(self, order=MemoryOrder.SEQ_CST):
        super().__init__(VOID, ())
        self.order = order

    def __repr__(self):
        return f"fence {self.order.name.lower()}"


# ---------------------------------------------------------------------------
# Computation
# ---------------------------------------------------------------------------


class BinOp(Instruction):
    """Arithmetic, bitwise and comparison operators (integer results)."""

    opcode = "binop"

    ARITH = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
    COMPARE = {"==", "!=", "<", ">", "<=", ">="}

    def __init__(self, op, left, right, name=None):
        super().__init__(INT, (left, right), name)
        self.op = op

    @property
    def left(self):
        return self.operands[0]

    @property
    def right(self):
        return self.operands[1]

    def __repr__(self):
        return (
            f"{self.short()} = {self.left.short()} {self.op} {self.right.short()}"
        )


class Cast(Instruction):
    """Type reinterpretation (no runtime effect in the unit-slot model)."""

    opcode = "cast"

    def __init__(self, value, to_type, name=None):
        super().__init__(to_type, (value,), name)

    @property
    def value(self):
        return self.operands[0]

    def __repr__(self):
        return f"{self.short()} = cast {self.value.short()} to {self.ctype!r}"


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class Br(Instruction):
    opcode = "br"
    is_terminator = True

    def __init__(self, target):
        super().__init__(VOID, ())
        self.target = target

    def successors(self):
        return [self.target]

    def __repr__(self):
        return f"br {self.target.label}"


class CondBr(Instruction):
    opcode = "condbr"
    is_terminator = True

    def __init__(self, cond, true_block, false_block):
        super().__init__(VOID, (cond,))
        self.true_block = true_block
        self.false_block = false_block

    @property
    def cond(self):
        return self.operands[0]

    def successors(self):
        return [self.true_block, self.false_block]

    def __repr__(self):
        return (
            f"br {self.cond.short()} ? {self.true_block.label} "
            f": {self.false_block.label}"
        )


class Ret(Instruction):
    opcode = "ret"
    is_terminator = True

    def __init__(self, value=None):
        super().__init__(VOID, (value,) if value is not None else ())
        self.has_value = value is not None

    @property
    def value(self):
        return self.operands[0] if self.has_value else None

    def successors(self):
        return []

    def __repr__(self):
        if self.has_value:
            return f"ret {self.value.short()}"
        return "ret void"


class Call(Instruction):
    opcode = "call"

    def __init__(self, callee, args, name=None):
        super().__init__(callee.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self):
        return self.operands

    def __repr__(self):
        args = ", ".join(arg.short() for arg in self.operands)
        if self.ctype.is_void():
            return f"call @{self.callee.name}({args})"
        return f"{self.short()} = call @{self.callee.name}({args})"


# ---------------------------------------------------------------------------
# Runtime intrinsics
# ---------------------------------------------------------------------------


class ThreadCreate(Instruction):
    """Spawn a thread running ``callee(arg)``; the result is a thread id."""

    opcode = "thread_create"

    def __init__(self, callee, arg=None, name=None):
        super().__init__(INT, (arg,) if arg is not None else (), name)
        self.callee = callee

    @property
    def arg(self):
        return self.operands[0] if self.operands else None

    def __repr__(self):
        arg = self.arg.short() if self.arg is not None else ""
        return f"{self.short()} = thread_create @{self.callee.name}({arg})"


class ThreadJoin(Instruction):
    opcode = "thread_join"

    def __init__(self, tid):
        super().__init__(VOID, (tid,))

    @property
    def tid(self):
        return self.operands[0]

    def __repr__(self):
        return f"thread_join {self.tid.short()}"


class AssertInst(Instruction):
    """Mini-C ``assert``: traps the VM / model checker when false."""

    opcode = "assert"

    def __init__(self, cond, message=""):
        super().__init__(VOID, (cond,))
        self.message = message

    @property
    def cond(self):
        return self.operands[0]

    def __repr__(self):
        return f"assert {self.cond.short()}"


class Sleep(Instruction):
    """A wait-semantics call (``usleep``/``sched_yield``): yields the CPU.

    No memory effect; the §6 polling-loop detector uses these as entry
    points for synchronization loops that time out instead of spinning
    forever.
    """

    opcode = "sleep"

    def __init__(self, duration):
        super().__init__(VOID, (duration,))

    @property
    def duration(self):
        return self.operands[0]

    def __repr__(self):
        return f"sleep {self.duration.short()}"


class CompilerBarrier(Instruction):
    """``__asm__("" ::: "memory")``: orders the *compiler* only.

    Compiles to nothing (a NOP), but §6 suggests using its placement as
    an additional entry point for synchronization detection — legacy
    code puts these exactly where ordering was intended.
    """

    opcode = "compiler_barrier"

    def __init__(self):
        super().__init__(VOID, ())

    def __repr__(self):
        return "compiler_barrier"


class PrintInst(Instruction):
    opcode = "print"

    def __init__(self, value):
        super().__init__(VOID, (value,))

    @property
    def value(self):
        return self.operands[0]

    def __repr__(self):
        return f"print {self.value.short()}"


def _access_mods(instr):
    mods = []
    if getattr(instr, "order", MemoryOrder.NOT_ATOMIC).is_atomic:
        mods.append(f"atomic({instr.order.name.lower()})")
    if getattr(instr, "volatile", False):
        mods.append("volatile")
    return (" " + " ".join(mods)) if mods else ""
