"""Textual IR printer, for debugging, golden tests and round-tripping.

Blocks print in reverse postorder: dominators come first, so every
value definition precedes its uses — the property
:mod:`repro.ir.parser` relies on (block creation order loses it after
inlining splices continuation blocks to the end).
"""

from repro.analysis.cfg import reverse_postorder


def print_function(function):
    """Render one function as readable text."""
    params = ", ".join(
        f"%{arg.name}: {arg.ctype!r}" for arg in function.arguments
    )
    lines = [f"func @{function.name}({params}) -> {function.return_type!r} {{"]
    ordered = reverse_postorder(function)
    ordered += [block for block in function.blocks if block not in ordered]
    for block in ordered:
        lines.append(f"{block.label}:")
        for instr in block.instructions:
            text = f"  {instr!r}"
            if instr.marks:
                text += f"   ; marks: {', '.join(sorted(instr.marks))}"
            lines.append(text)
    lines.append("}")
    return "\n".join(lines)


def print_module(module):
    """Render a whole module as readable text."""
    lines = [f"; module {module.name}"]
    for struct in module.struct_types.values():
        fields = ", ".join(f"{name}: {ftype!r}" for name, ftype in struct.fields)
        lines.append(f"struct {struct.name} {{ {fields} }}")
    for gvar in module.globals.values():
        quals = []
        if gvar.volatile:
            quals.append("volatile")
        if gvar.atomic:
            quals.append("atomic")
        qual = (" ".join(quals) + " ") if quals else ""
        init = gvar.initializer
        init_text = init[0] if len(init) == 1 else init
        lines.append(f"global @{gvar.name}: {qual}{gvar.value_type!r} = {init_text}")
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines)
