"""Structural IR verifier.

Catches the invariant violations that passes could introduce: blocks
without terminators, terminators in the middle of a block, operands that
belong to other functions, dangling branch targets, and calls to
functions outside the module.
"""

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.values import Argument, Constant, GlobalVar


def verify_module(module):
    """Raise :class:`IRError` on the first malformed construct found."""
    for function in module.functions.values():
        _verify_function(function, module)
    return True


def _verify_function(function, module):
    if not function.blocks:
        raise IRError(f"@{function.name}: function has no blocks")
    block_set = set(function.blocks)
    defined = set(function.arguments)

    for block in function.blocks:
        if block.function is not function:
            raise IRError(
                f"@{function.name}/{block.label}: block.function mismatch"
            )
        if not block.instructions:
            raise IRError(f"@{function.name}/{block.label}: empty block")
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            raise IRError(
                f"@{function.name}/{block.label}: missing terminator"
            )
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                raise IRError(
                    f"@{function.name}/{block.label}: terminator "
                    f"{instr!r} in the middle of a block"
                )
        for instr in block.instructions:
            if instr.block is not block:
                raise IRError(
                    f"@{function.name}/{block.label}: instr.block mismatch "
                    f"for {instr!r}"
                )
            defined.add(instr)
            for successor in _branch_targets(instr):
                if successor not in block_set:
                    raise IRError(
                        f"@{function.name}/{block.label}: branch to foreign "
                        f"block {successor.label}"
                    )
            if isinstance(instr, (ins.Call, ins.ThreadCreate)):
                if module.functions.get(instr.callee.name) is not instr.callee:
                    raise IRError(
                        f"@{function.name}: call to out-of-module function "
                        f"@{instr.callee.name}"
                    )

    # Operand sanity: every non-constant operand must be a global, an
    # argument of this function, or an instruction of this function.
    instruction_set = set()
    for block in function.blocks:
        instruction_set.update(block.instructions)
    for block in function.blocks:
        for instr in block.instructions:
            for operand in instr.operands:
                _verify_operand(function, instr, operand, instruction_set)


def _branch_targets(instr):
    if isinstance(instr, ins.Br):
        return [instr.target]
    if isinstance(instr, ins.CondBr):
        return [instr.true_block, instr.false_block]
    return []


def _verify_operand(function, instr, operand, instruction_set):
    if operand is None or isinstance(operand, (Constant, GlobalVar)):
        return
    if isinstance(operand, Argument):
        if operand.function is not function:
            raise IRError(
                f"@{function.name}: {instr!r} uses argument of "
                f"@{operand.function.name}"
            )
        return
    if isinstance(operand, ins.Instruction):
        if operand not in instruction_set:
            raise IRError(
                f"@{function.name}: {instr!r} uses instruction from another "
                f"function: {operand!r}"
            )
        return
    raise IRError(f"@{function.name}: {instr!r} has bad operand {operand!r}")
