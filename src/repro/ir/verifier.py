"""Structural IR verifier.

Catches the invariant violations that passes could introduce: blocks
without terminators, terminators in the middle of a block, operands that
belong to other functions, dangling branch targets, and calls to
functions outside the module.

It also enforces C11 memory-order well-formedness so no pass can emit
semantically meaningless combinations: loads cannot carry release
orders, stores cannot carry acquire/consume orders, fences must have an
order that actually fences, and atomic accesses must target a
single-slot (atomic-capable) location — never a whole array or struct.
"""

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import Argument, Constant, GlobalVar

#: Orders a stand-alone fence may carry.  ``fence relaxed`` (and weaker)
#: is a no-op C11 forbids; consume fences are promoted to acquire by
#: every compiler and never reach the IR.
_FENCE_ORDERS = frozenset((
    MemoryOrder.ACQUIRE,
    MemoryOrder.RELEASE,
    MemoryOrder.ACQ_REL,
    MemoryOrder.SEQ_CST,
))

#: Orders that are invalid on a load (release semantics need a write).
_BAD_LOAD_ORDERS = frozenset((MemoryOrder.RELEASE, MemoryOrder.ACQ_REL))

#: Orders that are invalid on a store (acquire semantics need a read).
_BAD_STORE_ORDERS = frozenset((
    MemoryOrder.CONSUME,
    MemoryOrder.ACQUIRE,
    MemoryOrder.ACQ_REL,
))


def verify_module(module, functions=None):
    """Raise :class:`IRError` on the first malformed construct found.

    ``functions`` optionally restricts verification to the named
    subset — the porting pipeline's incremental fast path: a clone of a
    verified module only needs its *touched* functions re-checked.
    Unknown names are ignored (a touched-set may mention functions a
    later stage removed).
    """
    if functions is None:
        targets = module.functions.values()
    else:
        targets = [
            module.functions[name] for name in functions
            if name in module.functions
        ]
    for function in targets:
        _verify_function(function, module)
    return True


def _verify_function(function, module):
    if not function.blocks:
        raise IRError(f"@{function.name}: function has no blocks")
    block_set = set(function.blocks)
    defined = set(function.arguments)

    for block in function.blocks:
        if block.function is not function:
            raise IRError(
                f"@{function.name}/{block.label}: block.function mismatch"
            )
        if not block.instructions:
            raise IRError(f"@{function.name}/{block.label}: empty block")
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            raise IRError(
                f"@{function.name}/{block.label}: missing terminator"
            )
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                raise IRError(
                    f"@{function.name}/{block.label}: terminator "
                    f"{instr!r} in the middle of a block"
                )
        for instr in block.instructions:
            if instr.block is not block:
                raise IRError(
                    f"@{function.name}/{block.label}: instr.block mismatch "
                    f"for {instr!r}"
                )
            defined.add(instr)
            for successor in _branch_targets(instr):
                if successor not in block_set:
                    raise IRError(
                        f"@{function.name}/{block.label}: branch to foreign "
                        f"block {successor.label}"
                    )
            if isinstance(instr, (ins.Call, ins.ThreadCreate)):
                if module.functions.get(instr.callee.name) is not instr.callee:
                    raise IRError(
                        f"@{function.name}: call to out-of-module function "
                        f"@{instr.callee.name}"
                    )
            _verify_memory_semantics(function, block, instr)

    # Operand sanity: every non-constant operand must be a global, an
    # argument of this function, or an instruction of this function.
    instruction_set = set()
    for block in function.blocks:
        instruction_set.update(block.instructions)
    for block in function.blocks:
        for instr in block.instructions:
            for operand in instr.operands:
                _verify_operand(function, instr, operand, instruction_set)


def _verify_memory_semantics(function, block, instr):
    where = f"@{function.name}/{block.label}"
    if isinstance(instr, ins.Fence):
        if instr.order not in _FENCE_ORDERS:
            raise IRError(
                f"{where}: fence with invalid order "
                f"{instr.order.name.lower()}"
            )
        return
    if isinstance(instr, ins.Load) and instr.order in _BAD_LOAD_ORDERS:
        raise IRError(
            f"{where}: load cannot have release semantics "
            f"({instr.order.name.lower()})"
        )
    if isinstance(instr, ins.Store) and instr.order in _BAD_STORE_ORDERS:
        raise IRError(
            f"{where}: store cannot have acquire semantics "
            f"({instr.order.name.lower()})"
        )
    atomic = isinstance(instr, (ins.AtomicRMW, ins.Cmpxchg)) or (
        isinstance(instr, (ins.Load, ins.Store)) and instr.order.is_atomic
    )
    if atomic:
        size = _pointee_slots(instr.pointer)
        if size > 1:
            raise IRError(
                f"{where}: atomic {instr.opcode} on multi-slot operand "
                f"{instr.pointer.short()} ({size} slots; not "
                f"atomic-capable)"
            )


def _pointee_slots(pointer):
    """Number of memory slots an access through ``pointer`` covers."""
    if isinstance(pointer, GlobalVar):
        return max(pointer.value_type.size, 1)
    if isinstance(pointer, ins.Alloca):
        return max(pointer.allocated_type.size, 1)
    return 1


def _branch_targets(instr):
    if isinstance(instr, ins.Br):
        return [instr.target]
    if isinstance(instr, ins.CondBr):
        return [instr.true_block, instr.false_block]
    return []


def _verify_operand(function, instr, operand, instruction_set):
    if operand is None or isinstance(operand, (Constant, GlobalVar)):
        return
    if isinstance(operand, Argument):
        if operand.function is not function:
            raise IRError(
                f"@{function.name}: {instr!r} uses argument of "
                f"@{operand.function.name}"
            )
        return
    if isinstance(operand, ins.Instruction):
        if operand not in instruction_set:
            raise IRError(
                f"@{function.name}: {instr!r} uses instruction from another "
                f"function: {operand!r}"
            )
        return
    raise IRError(f"@{function.name}: {instr!r} has bad operand {operand!r}")
