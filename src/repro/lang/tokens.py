"""Token kinds and the Token value object for the Mini-C lexer."""

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """All token categories produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals and identifiers.
    IDENT = auto()
    INT_LIT = auto()
    STRING_LIT = auto()
    CHAR_LIT = auto()

    # Keywords.
    KW_INT = auto()
    KW_LONG = auto()
    KW_CHAR = auto()
    KW_VOID = auto()
    KW_STRUCT = auto()
    KW_VOLATILE = auto()
    KW_ATOMIC = auto()
    KW_CONST = auto()
    KW_STATIC = auto()
    KW_EXTERN = auto()
    KW_UNSIGNED = auto()
    KW_SIGNED = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_WHILE = auto()
    KW_DO = auto()
    KW_FOR = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()
    KW_RETURN = auto()
    KW_GOTO = auto()
    KW_SIZEOF = auto()
    KW_NULL = auto()
    KW_ASM = auto()
    KW_TYPEDEF = auto()
    KW_ENUM = auto()
    KW_SWITCH = auto()
    KW_CASE = auto()
    KW_DEFAULT = auto()

    # Punctuation and operators.
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    SEMI = auto()
    COMMA = auto()
    COLON = auto()
    QUESTION = auto()
    DOT = auto()
    ARROW = auto()
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    AMP = auto()
    PIPE = auto()
    CARET = auto()
    TILDE = auto()
    BANG = auto()
    ASSIGN = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    STAR_ASSIGN = auto()
    SLASH_ASSIGN = auto()
    PERCENT_ASSIGN = auto()
    AMP_ASSIGN = auto()
    PIPE_ASSIGN = auto()
    CARET_ASSIGN = auto()
    SHL_ASSIGN = auto()
    SHR_ASSIGN = auto()
    PLUS_PLUS = auto()
    MINUS_MINUS = auto()
    EQ = auto()
    NE = auto()
    LT = auto()
    GT = auto()
    LE = auto()
    GE = auto()
    AND_AND = auto()
    OR_OR = auto()
    SHL = auto()
    SHR = auto()

    EOF = auto()


#: Maps keyword spellings to their token kinds.
KEYWORDS = {
    "int": TokenKind.KW_INT,
    "long": TokenKind.KW_LONG,
    "char": TokenKind.KW_CHAR,
    "void": TokenKind.KW_VOID,
    "struct": TokenKind.KW_STRUCT,
    "volatile": TokenKind.KW_VOLATILE,
    "_Atomic": TokenKind.KW_ATOMIC,
    "const": TokenKind.KW_CONST,
    "static": TokenKind.KW_STATIC,
    "extern": TokenKind.KW_EXTERN,
    "unsigned": TokenKind.KW_UNSIGNED,
    "signed": TokenKind.KW_SIGNED,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "for": TokenKind.KW_FOR,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "return": TokenKind.KW_RETURN,
    "goto": TokenKind.KW_GOTO,
    "sizeof": TokenKind.KW_SIZEOF,
    "NULL": TokenKind.KW_NULL,
    "__asm__": TokenKind.KW_ASM,
    "asm": TokenKind.KW_ASM,
    "typedef": TokenKind.KW_TYPEDEF,
    "enum": TokenKind.KW_ENUM,
    "switch": TokenKind.KW_SWITCH,
    "case": TokenKind.KW_CASE,
    "default": TokenKind.KW_DEFAULT,
}


#: Multi-character operators, longest first so the lexer can match greedily.
OPERATORS = [
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("->", TokenKind.ARROW),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (":", TokenKind.COLON),
    ("?", TokenKind.QUESTION),
    (".", TokenKind.DOT),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
    ("!", TokenKind.BANG),
    ("=", TokenKind.ASSIGN),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
]


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int
    value: object = None

    def __repr__(self):
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
