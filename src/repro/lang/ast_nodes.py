"""AST node definitions for Mini-C.

Nodes are plain dataclass-style objects.  Every node records a source
line so later passes can point diagnostics (and AtoMig reports) back at
the Mini-C source.
"""


class Node:
    """Base class for all AST nodes."""

    def __init__(self, line=None):
        self.line = line
        #: Filled in by semantic analysis for expressions.
        self.ctype = None


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


class Program(Node):
    """A whole translation unit: struct defs, globals and functions."""

    def __init__(self, structs, globals_, functions, enums=None, line=None):
        super().__init__(line)
        self.structs = structs  # list of StructDef
        self.globals = globals_  # list of GlobalDecl
        self.functions = functions  # list of FunctionDef
        self.enums = enums or []  # list of EnumDef

    def function(self, name):
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)


class StructDef(Node):
    def __init__(self, name, fields, line=None):
        super().__init__(line)
        self.name = name
        self.fields = fields  # list of (name, CType-like spec resolved later)


class EnumDef(Node):
    def __init__(self, name, members, line=None):
        super().__init__(line)
        self.name = name
        self.members = members  # list of (name, int)


class GlobalDecl(Node):
    """A global variable declaration with optional initializer."""

    def __init__(self, name, type_spec, init=None, volatile=False, atomic=False, line=None):
        super().__init__(line)
        self.name = name
        self.type_spec = type_spec
        self.init = init  # Expr or list of Expr (array init) or None
        self.volatile = volatile
        self.atomic = atomic


class Param(Node):
    def __init__(self, name, type_spec, line=None):
        super().__init__(line)
        self.name = name
        self.type_spec = type_spec


class FunctionDef(Node):
    def __init__(self, name, return_spec, params, body, line=None):
        super().__init__(line)
        self.name = name
        self.return_spec = return_spec
        self.params = params  # list of Param
        self.body = body  # Block


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Stmt(Node):
    pass


class Block(Stmt):
    def __init__(self, statements, line=None):
        super().__init__(line)
        self.statements = statements


class LocalDecl(Stmt):
    def __init__(self, name, type_spec, init=None, volatile=False, atomic=False, line=None):
        super().__init__(line)
        self.name = name
        self.type_spec = type_spec
        self.init = init
        self.volatile = volatile
        self.atomic = atomic


class ExprStmt(Stmt):
    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    def __init__(self, cond, then_body, else_body=None, line=None):
        super().__init__(line)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    def __init__(self, cond, body, line=None):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    def __init__(self, body, cond, line=None):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Stmt):
    def __init__(self, init, cond, step, body, line=None):
        super().__init__(line)
        self.init = init  # Stmt or None
        self.cond = cond  # Expr or None
        self.step = step  # Expr or None
        self.body = body


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


class Return(Stmt):
    def __init__(self, value=None, line=None):
        super().__init__(line)
        self.value = value


class Goto(Stmt):
    def __init__(self, label, line=None):
        super().__init__(line)
        self.label = label


class Label(Stmt):
    def __init__(self, name, line=None):
        super().__init__(line)
        self.name = name


class InlineAsm(Stmt):
    """An ``__asm__("...")`` statement; the template is kept verbatim."""

    def __init__(self, template, line=None):
        super().__init__(line)
        self.template = template


class Switch(Stmt):
    """``switch (subject) { case K: ...; default: ... }``.

    ``cases`` is a list of (constant-expr-or-None, [Stmt]) pairs in
    source order; None marks the default arm.  C fallthrough semantics
    are preserved by the lowering.
    """

    def __init__(self, subject, cases, line=None):
        super().__init__(line)
        self.subject = subject
        self.cases = cases


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr(Node):
    pass


class IntLiteral(Expr):
    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class NullLiteral(Expr):
    pass


class StringLiteral(Expr):
    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class Identifier(Expr):
    def __init__(self, name, line=None):
        super().__init__(line)
        self.name = name
        #: Resolved by sema: "local", "param", "global", "function", "enum".
        self.binding = None
        self.enum_value = None


class Unary(Expr):
    """Unary operators: ``- ~ ! * &`` plus pre/post ``++``/``--``."""

    def __init__(self, op, operand, postfix=False, line=None):
        super().__init__(line)
        self.op = op
        self.operand = operand
        self.postfix = postfix


class Binary(Expr):
    def __init__(self, op, left, right, line=None):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Conditional(Expr):
    """The ternary ``cond ? a : b``."""

    def __init__(self, cond, then_expr, else_expr, line=None):
        super().__init__(line)
        self.cond = cond
        self.then_expr = then_expr
        self.else_expr = else_expr


class Assign(Expr):
    """Assignment, including compound forms (``op`` is None for plain =)."""

    def __init__(self, target, value, op=None, line=None):
        super().__init__(line)
        self.target = target
        self.value = value
        self.op = op


class Index(Expr):
    def __init__(self, base, index, line=None):
        super().__init__(line)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    def __init__(self, base, field, arrow, line=None):
        super().__init__(line)
        self.base = base
        self.field = field
        self.arrow = arrow


class Call(Expr):
    def __init__(self, name, args, line=None):
        super().__init__(line)
        self.name = name
        self.args = args
        #: Set by sema: True when this is a recognized builtin.
        self.is_builtin = False


class SizeOf(Expr):
    def __init__(self, type_spec, line=None):
        super().__init__(line)
        self.type_spec = type_spec


class Cast(Expr):
    def __init__(self, type_spec, operand, line=None):
        super().__init__(line)
        self.type_spec = type_spec
        self.operand = operand


# --------------------------------------------------------------------------
# Type specifiers (syntactic, resolved to CType by sema)
# --------------------------------------------------------------------------


class TypeSpec(Node):
    """Syntactic type: base name + pointer depth + optional array dims."""

    def __init__(self, base, pointer_depth=0, array_dims=None,
                 volatile=False, atomic=False, struct_name=None, line=None):
        super().__init__(line)
        self.base = base  # "int", "void", "struct"
        self.struct_name = struct_name
        self.pointer_depth = pointer_depth
        self.array_dims = array_dims or []
        self.volatile = volatile
        self.atomic = atomic

    def __repr__(self):
        base = f"struct {self.struct_name}" if self.base == "struct" else self.base
        return base + "*" * self.pointer_depth + "".join(
            f"[{d}]" for d in self.array_dims
        )


def walk(node):
    """Yield ``node`` and all AST nodes reachable from it, depth-first."""
    yield node
    for value in vars(node).values():
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
