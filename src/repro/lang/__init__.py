"""Mini-C frontend: lexer, parser, AST and semantic analysis.

Mini-C is the C subset used throughout this reproduction.  It covers the
constructs the AtoMig paper analyses: globals, structs, arrays, pointers,
``volatile``/``_Atomic`` qualifiers, C11-style atomic builtins, x86 inline
assembly, and a small pthread-like threading API.
"""

from repro.lang.ast_nodes import Program
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.sema import SemanticAnalyzer, analyze

__all__ = [
    "Lexer",
    "Parser",
    "Program",
    "SemanticAnalyzer",
    "analyze",
    "parse",
    "tokenize",
]
