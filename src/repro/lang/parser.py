"""Recursive-descent parser for Mini-C.

The grammar is a classic C subset.  Precedence climbing handles
expressions; declarations are distinguished from expression statements by
one-token lookahead on type keywords (Mini-C has no typedef-name
ambiguity because ``typedef`` only aliases builtin spellings).
"""

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind as T

_TYPE_STARTERS = {
    T.KW_INT,
    T.KW_LONG,
    T.KW_CHAR,
    T.KW_VOID,
    T.KW_STRUCT,
    T.KW_VOLATILE,
    T.KW_ATOMIC,
    T.KW_CONST,
    T.KW_STATIC,
    T.KW_EXTERN,
    T.KW_UNSIGNED,
    T.KW_SIGNED,
}

_ASSIGN_OPS = {
    T.ASSIGN: None,
    T.PLUS_ASSIGN: "+",
    T.MINUS_ASSIGN: "-",
    T.STAR_ASSIGN: "*",
    T.SLASH_ASSIGN: "/",
    T.PERCENT_ASSIGN: "%",
    T.AMP_ASSIGN: "&",
    T.PIPE_ASSIGN: "|",
    T.CARET_ASSIGN: "^",
    T.SHL_ASSIGN: "<<",
    T.SHR_ASSIGN: ">>",
}

# Binary operator precedence tiers, weakest first.
_BINARY_TIERS = [
    [(T.OR_OR, "||")],
    [(T.AND_AND, "&&")],
    [(T.PIPE, "|")],
    [(T.CARET, "^")],
    [(T.AMP, "&")],
    [(T.EQ, "=="), (T.NE, "!=")],
    [(T.LT, "<"), (T.GT, ">"), (T.LE, "<="), (T.GE, ">=")],
    [(T.SHL, "<<"), (T.SHR, ">>")],
    [(T.PLUS, "+"), (T.MINUS, "-")],
    [(T.STAR, "*"), (T.SLASH, "/"), (T.PERCENT, "%")],
]


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0
        self.typedefs = {}  # alias name -> TypeSpec

    # -- token plumbing ---------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, *kinds):
        return self._peek().kind in kinds

    def _advance(self):
        token = self.tokens[self.pos]
        if token.kind is not T.EOF:
            self.pos += 1
        return token

    def _expect(self, kind, what=None):
        token = self._peek()
        if token.kind is not kind:
            expected = what or kind.name
            raise ParseError(
                f"expected {expected}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _match(self, kind):
        if self._at(kind):
            return self._advance()
        return None

    def _starts_type(self, offset=0):
        token = self._peek(offset)
        if token.kind in _TYPE_STARTERS:
            return True
        return token.kind is T.IDENT and token.text in self.typedefs

    # -- top level ---------------------------------------------------------

    def parse_program(self):
        structs, globals_, functions, enums = [], [], [], []
        while not self._at(T.EOF):
            if self._at(T.KW_TYPEDEF):
                self._parse_typedef()
            elif self._at(T.KW_STRUCT) and self._peek(2).kind is T.LBRACE:
                structs.append(self._parse_struct_def())
            elif self._at(T.KW_ENUM):
                enums.append(self._parse_enum_def())
            else:
                decl_or_fn = self._parse_global_or_function()
                if isinstance(decl_or_fn, ast.FunctionDef):
                    functions.append(decl_or_fn)
                else:
                    globals_.extend(decl_or_fn)
        return ast.Program(structs, globals_, functions, enums)

    def _parse_typedef(self):
        line = self._expect(T.KW_TYPEDEF).line
        spec = self._parse_type_spec()
        depth = 0
        while self._match(T.STAR):
            depth += 1
        name = self._expect(T.IDENT).text
        self._expect(T.SEMI)
        spec.pointer_depth += depth
        spec.line = line
        self.typedefs[name] = spec

    def _parse_struct_def(self):
        line = self._expect(T.KW_STRUCT).line
        name = self._expect(T.IDENT).text
        self._expect(T.LBRACE)
        fields = []
        while not self._at(T.RBRACE):
            spec = self._parse_type_spec()
            while True:
                field_spec = self._clone_spec(spec)
                while self._match(T.STAR):
                    field_spec.pointer_depth += 1
                fname = self._expect(T.IDENT).text
                while self._match(T.LBRACKET):
                    dim = self._expect(T.INT_LIT).value
                    self._expect(T.RBRACKET)
                    field_spec.array_dims.append(dim)
                fields.append((fname, field_spec))
                if not self._match(T.COMMA):
                    break
            self._expect(T.SEMI)
        self._expect(T.RBRACE)
        self._expect(T.SEMI)
        return ast.StructDef(name, fields, line=line)

    def _parse_enum_def(self):
        line = self._expect(T.KW_ENUM).line
        name = self._match(T.IDENT)
        self._expect(T.LBRACE)
        members = []
        next_value = 0
        while not self._at(T.RBRACE):
            member = self._expect(T.IDENT).text
            if self._match(T.ASSIGN):
                sign = -1 if self._match(T.MINUS) else 1
                next_value = sign * self._expect(T.INT_LIT).value
            members.append((member, next_value))
            next_value += 1
            if not self._match(T.COMMA):
                break
        self._expect(T.RBRACE)
        self._expect(T.SEMI)
        return ast.EnumDef(name.text if name else None, members, line=line)

    def _parse_global_or_function(self):
        spec = self._parse_type_spec()
        first_depth = 0
        while self._match(T.STAR):
            first_depth += 1
        name_token = self._expect(T.IDENT)
        if self._at(T.LPAREN):
            return self._parse_function(spec, first_depth, name_token)
        return self._parse_global_tail(spec, first_depth, name_token)

    def _parse_function(self, spec, pointer_depth, name_token):
        return_spec = self._clone_spec(spec)
        return_spec.pointer_depth += pointer_depth
        self._expect(T.LPAREN)
        params = []
        if not self._at(T.RPAREN):
            if self._at(T.KW_VOID) and self._peek(1).kind is T.RPAREN:
                self._advance()
            else:
                while True:
                    pspec = self._parse_type_spec()
                    while self._match(T.STAR):
                        pspec.pointer_depth += 1
                    pname = self._expect(T.IDENT)
                    while self._match(T.LBRACKET):
                        # Array parameters decay to pointers.
                        if not self._at(T.RBRACKET):
                            self._expect(T.INT_LIT)
                        self._expect(T.RBRACKET)
                        pspec.pointer_depth += 1
                    params.append(
                        ast.Param(pname.text, pspec, line=pname.line)
                    )
                    if not self._match(T.COMMA):
                        break
        self._expect(T.RPAREN)
        if self._match(T.SEMI):
            # Forward declaration: Mini-C resolves calls by name, so the
            # prototype carries no information we need; skip it.
            return []
        body = self._parse_block()
        return ast.FunctionDef(
            name_token.text, return_spec, params, body, line=name_token.line
        )

    def _parse_global_tail(self, spec, first_depth, first_name):
        decls = []
        depth, name_token = first_depth, first_name
        while True:
            var_spec = self._clone_spec(spec)
            var_spec.pointer_depth += depth
            while self._match(T.LBRACKET):
                dim = self._expect(T.INT_LIT).value
                self._expect(T.RBRACKET)
                var_spec.array_dims.append(dim)
            init = None
            if self._match(T.ASSIGN):
                init = self._parse_initializer()
            decls.append(
                ast.GlobalDecl(
                    name_token.text,
                    var_spec,
                    init,
                    volatile=var_spec.volatile,
                    atomic=var_spec.atomic,
                    line=name_token.line,
                )
            )
            if self._match(T.COMMA):
                depth = 0
                while self._match(T.STAR):
                    depth += 1
                name_token = self._expect(T.IDENT)
                continue
            self._expect(T.SEMI)
            return decls

    def _parse_initializer(self):
        if self._match(T.LBRACE):
            items = []
            while not self._at(T.RBRACE):
                items.append(self._parse_initializer())
                if not self._match(T.COMMA):
                    break
            self._expect(T.RBRACE)
            return items
        return self._parse_assignment()

    # -- types --------------------------------------------------------------

    def _parse_type_spec(self):
        line = self._peek().line
        volatile = atomic = False
        base = None
        struct_name = None
        alias = None
        while True:
            token = self._peek()
            if token.kind is T.KW_VOLATILE:
                volatile = True
                self._advance()
            elif token.kind is T.KW_ATOMIC:
                atomic = True
                self._advance()
            elif token.kind in (T.KW_CONST, T.KW_STATIC, T.KW_EXTERN,
                                T.KW_UNSIGNED, T.KW_SIGNED):
                self._advance()
            elif token.kind in (T.KW_INT, T.KW_LONG, T.KW_CHAR):
                base = "int"
                self._advance()
                # Swallow ``long long`` / ``long int`` combinations.
                while self._at(T.KW_INT, T.KW_LONG, T.KW_CHAR):
                    self._advance()
            elif token.kind is T.KW_VOID:
                base = "void"
                self._advance()
            elif token.kind is T.KW_STRUCT:
                self._advance()
                struct_name = self._expect(T.IDENT).text
                base = "struct"
            elif token.kind is T.IDENT and token.text in self.typedefs and base is None:
                alias = self.typedefs[token.text]
                self._advance()
            else:
                break
        if alias is not None:
            spec = self._clone_spec(alias)
            spec.volatile = spec.volatile or volatile
            spec.atomic = spec.atomic or atomic
            spec.line = line
            return spec
        if base is None:
            token = self._peek()
            if volatile or atomic:
                base = "int"  # e.g. ``volatile x;`` defaults to int
            else:
                raise ParseError(
                    f"expected type, found {token.text!r}", token.line, token.column
                )
        return ast.TypeSpec(
            base,
            volatile=volatile,
            atomic=atomic,
            struct_name=struct_name,
            line=line,
        )

    @staticmethod
    def _clone_spec(spec):
        return ast.TypeSpec(
            spec.base,
            pointer_depth=spec.pointer_depth,
            array_dims=list(spec.array_dims),
            volatile=spec.volatile,
            atomic=spec.atomic,
            struct_name=spec.struct_name,
            line=spec.line,
        )

    # -- statements ----------------------------------------------------------

    def _parse_block(self):
        line = self._expect(T.LBRACE).line
        statements = []
        while not self._at(T.RBRACE):
            statements.append(self._parse_statement())
        self._expect(T.RBRACE)
        return ast.Block(statements, line=line)

    def _parse_statement(self):
        token = self._peek()
        kind = token.kind
        if kind is T.LBRACE:
            return self._parse_block()
        if kind is T.KW_IF:
            return self._parse_if()
        if kind is T.KW_WHILE:
            return self._parse_while()
        if kind is T.KW_DO:
            return self._parse_do_while()
        if kind is T.KW_FOR:
            return self._parse_for()
        if kind is T.KW_BREAK:
            self._advance()
            self._expect(T.SEMI)
            return ast.Break(line=token.line)
        if kind is T.KW_CONTINUE:
            self._advance()
            self._expect(T.SEMI)
            return ast.Continue(line=token.line)
        if kind is T.KW_RETURN:
            self._advance()
            value = None if self._at(T.SEMI) else self._parse_expression()
            self._expect(T.SEMI)
            return ast.Return(value, line=token.line)
        if kind is T.KW_GOTO:
            self._advance()
            label = self._expect(T.IDENT).text
            self._expect(T.SEMI)
            return ast.Goto(label, line=token.line)
        if kind is T.KW_SWITCH:
            return self._parse_switch()
        if kind is T.KW_ASM:
            return self._parse_asm()
        if kind is T.SEMI:
            self._advance()
            return ast.Block([], line=token.line)
        if kind is T.IDENT and self._peek(1).kind is T.COLON:
            self._advance()
            self._advance()
            return ast.Label(token.text, line=token.line)
        if self._starts_type():
            return self._parse_local_decl()
        expr = self._parse_expression()
        self._expect(T.SEMI)
        return ast.ExprStmt(expr, line=token.line)

    def _parse_if(self):
        line = self._expect(T.KW_IF).line
        self._expect(T.LPAREN)
        cond = self._parse_expression()
        self._expect(T.RPAREN)
        then_body = self._parse_statement()
        else_body = None
        if self._match(T.KW_ELSE):
            else_body = self._parse_statement()
        return ast.If(cond, then_body, else_body, line=line)

    def _parse_while(self):
        line = self._expect(T.KW_WHILE).line
        self._expect(T.LPAREN)
        cond = self._parse_expression()
        self._expect(T.RPAREN)
        body = self._parse_statement()
        return ast.While(cond, body, line=line)

    def _parse_do_while(self):
        line = self._expect(T.KW_DO).line
        body = self._parse_statement()
        self._expect(T.KW_WHILE)
        self._expect(T.LPAREN)
        cond = self._parse_expression()
        self._expect(T.RPAREN)
        self._expect(T.SEMI)
        return ast.DoWhile(body, cond, line=line)

    def _parse_for(self):
        line = self._expect(T.KW_FOR).line
        self._expect(T.LPAREN)
        init = None
        if not self._at(T.SEMI):
            if self._starts_type():
                init = self._parse_local_decl()
            else:
                init = ast.ExprStmt(self._parse_expression(), line=line)
                self._expect(T.SEMI)
        else:
            self._advance()
        cond = None if self._at(T.SEMI) else self._parse_expression()
        self._expect(T.SEMI)
        step = None if self._at(T.RPAREN) else self._parse_expression()
        self._expect(T.RPAREN)
        body = self._parse_statement()
        return ast.For(init, cond, step, body, line=line)

    def _parse_switch(self):
        line = self._expect(T.KW_SWITCH).line
        self._expect(T.LPAREN)
        subject = self._parse_expression()
        self._expect(T.RPAREN)
        self._expect(T.LBRACE)
        cases = []
        current = None
        while not self._at(T.RBRACE):
            if self._at(T.KW_CASE):
                self._advance()
                sign = -1 if self._match(T.MINUS) else 1
                token = self._peek()
                if token.kind is T.INT_LIT or token.kind is T.CHAR_LIT:
                    value_expr = ast.IntLiteral(
                        sign * self._advance().value, line=token.line
                    )
                elif token.kind is T.IDENT:
                    value_expr = ast.Identifier(
                        self._advance().text, line=token.line
                    )
                else:
                    raise ParseError(
                        "case label must be an integer or enum constant",
                        token.line, token.column,
                    )
                self._expect(T.COLON)
                current = (value_expr, [])
                cases.append(current)
            elif self._at(T.KW_DEFAULT):
                self._advance()
                self._expect(T.COLON)
                current = (None, [])
                cases.append(current)
            else:
                if current is None:
                    token = self._peek()
                    raise ParseError(
                        "statement before first case label",
                        token.line, token.column,
                    )
                current[1].append(self._parse_statement())
        self._expect(T.RBRACE)
        return ast.Switch(subject, cases, line=line)

    def _parse_asm(self):
        line = self._expect(T.KW_ASM).line
        # Accept the common ``__asm__ volatile ("..."::: "memory")`` shape.
        self._match(T.KW_VOLATILE)
        self._expect(T.LPAREN)
        parts = [self._expect(T.STRING_LIT).value]
        while self._at(T.STRING_LIT):
            parts.append(self._advance().value)
        # Skip constraint clauses up to the closing paren.
        depth = 1
        while depth:
            token = self._advance()
            if token.kind is T.LPAREN:
                depth += 1
            elif token.kind is T.RPAREN:
                depth -= 1
            elif token.kind is T.EOF:
                raise ParseError("unterminated asm statement", line, 0)
        self._expect(T.SEMI)
        return ast.InlineAsm(" ".join(parts), line=line)

    def _parse_local_decl(self):
        spec = self._parse_type_spec()
        statements = []
        line = spec.line
        while True:
            var_spec = self._clone_spec(spec)
            while self._match(T.STAR):
                var_spec.pointer_depth += 1
            name = self._expect(T.IDENT)
            while self._match(T.LBRACKET):
                dim = self._expect(T.INT_LIT).value
                self._expect(T.RBRACKET)
                var_spec.array_dims.append(dim)
            init = None
            if self._match(T.ASSIGN):
                init = self._parse_initializer()
            statements.append(
                ast.LocalDecl(
                    name.text,
                    var_spec,
                    init,
                    volatile=var_spec.volatile,
                    atomic=var_spec.atomic,
                    line=name.line,
                )
            )
            if not self._match(T.COMMA):
                break
        self._expect(T.SEMI)
        if len(statements) == 1:
            return statements[0]
        return ast.Block(statements, line=line)

    # -- expressions -----------------------------------------------------------

    def _parse_expression(self):
        expr = self._parse_assignment()
        while self._match(T.COMMA):
            right = self._parse_assignment()
            expr = ast.Binary(",", expr, right, line=right.line)
        return expr

    def _parse_assignment(self):
        left = self._parse_conditional()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(left, value, op=_ASSIGN_OPS[token.kind], line=token.line)
        return left

    def _parse_conditional(self):
        cond = self._parse_binary(0)
        if self._match(T.QUESTION):
            then_expr = self._parse_assignment()
            self._expect(T.COLON)
            else_expr = self._parse_conditional()
            return ast.Conditional(cond, then_expr, else_expr, line=cond.line)
        return cond

    def _parse_binary(self, tier):
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        while True:
            token = self._peek()
            matched = None
            for kind, op in _BINARY_TIERS[tier]:
                if token.kind is kind:
                    matched = op
                    break
            if matched is None:
                return left
            self._advance()
            right = self._parse_binary(tier + 1)
            left = ast.Binary(matched, left, right, line=token.line)

    def _parse_unary(self):
        token = self._peek()
        kind = token.kind
        if kind in (T.MINUS, T.TILDE, T.BANG, T.STAR, T.AMP, T.PLUS):
            self._advance()
            operand = self._parse_unary()
            if kind is T.PLUS:
                return operand
            ops = {
                T.MINUS: "-",
                T.TILDE: "~",
                T.BANG: "!",
                T.STAR: "*",
                T.AMP: "&",
            }
            return ast.Unary(ops[kind], operand, line=token.line)
        if kind in (T.PLUS_PLUS, T.MINUS_MINUS):
            self._advance()
            operand = self._parse_unary()
            op = "++" if kind is T.PLUS_PLUS else "--"
            return ast.Unary(op, operand, postfix=False, line=token.line)
        if kind is T.KW_SIZEOF:
            self._advance()
            self._expect(T.LPAREN)
            if self._starts_type():
                spec = self._parse_type_spec()
                while self._match(T.STAR):
                    spec.pointer_depth += 1
                node = ast.SizeOf(spec, line=token.line)
            else:
                # sizeof(expr): modelled as sizeof(int) == 1 slot.
                self._parse_expression()
                node = ast.SizeOf(
                    ast.TypeSpec("int", line=token.line), line=token.line
                )
            self._expect(T.RPAREN)
            return node
        if kind is T.LPAREN and self._starts_type(1):
            self._advance()
            spec = self._parse_type_spec()
            while self._match(T.STAR):
                spec.pointer_depth += 1
            self._expect(T.RPAREN)
            operand = self._parse_unary()
            return ast.Cast(spec, operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._peek()
            kind = token.kind
            if kind is T.LBRACKET:
                self._advance()
                index = self._parse_expression()
                self._expect(T.RBRACKET)
                expr = ast.Index(expr, index, line=token.line)
            elif kind is T.DOT:
                self._advance()
                field = self._expect(T.IDENT).text
                expr = ast.Member(expr, field, arrow=False, line=token.line)
            elif kind is T.ARROW:
                self._advance()
                field = self._expect(T.IDENT).text
                expr = ast.Member(expr, field, arrow=True, line=token.line)
            elif kind in (T.PLUS_PLUS, T.MINUS_MINUS):
                self._advance()
                op = "++" if kind is T.PLUS_PLUS else "--"
                expr = ast.Unary(op, expr, postfix=True, line=token.line)
            else:
                return expr

    def _parse_primary(self):
        token = self._peek()
        kind = token.kind
        if kind is T.INT_LIT or kind is T.CHAR_LIT:
            self._advance()
            return ast.IntLiteral(token.value, line=token.line)
        if kind is T.STRING_LIT:
            self._advance()
            return ast.StringLiteral(token.value, line=token.line)
        if kind is T.KW_NULL:
            self._advance()
            return ast.NullLiteral(line=token.line)
        if kind is T.IDENT:
            self._advance()
            if self._at(T.LPAREN):
                self._advance()
                args = []
                if not self._at(T.RPAREN):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._match(T.COMMA):
                            break
                self._expect(T.RPAREN)
                return ast.Call(token.text, args, line=token.line)
            return ast.Identifier(token.text, line=token.line)
        if kind is T.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(T.RPAREN)
            return expr
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse(source):
    """Parse Mini-C ``source`` text into a :class:`Program` AST."""
    return Parser(tokenize(source)).parse_program()
