"""The Mini-C source-level type system.

All scalar types occupy one abstract memory slot; aggregate sizes are the
sum of their member sizes.  This matches the reproduction's unit-slot
memory model (see DESIGN.md): AtoMig's analyses only need *which* field of
*which* struct an access touches, never byte-accurate layout.
"""

from repro.errors import SemanticError


class CType:
    """Base class for Mini-C types."""

    #: Size of the type in abstract memory slots.
    size = 1

    def is_scalar(self):
        return True

    def is_pointer(self):
        return False

    def is_void(self):
        return False


class IntType(CType):
    """The integer type.  ``int``, ``long``, ``char`` all map here."""

    size = 1

    def __init__(self, name="int"):
        self.name = name

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, IntType)

    def __hash__(self):
        return hash("int")


class VoidType(CType):
    """The ``void`` type (function returns and opaque pointees only)."""

    size = 0

    def is_scalar(self):
        return False

    def is_void(self):
        return True

    def __repr__(self):
        return "void"

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")


class PointerType(CType):
    """A pointer to ``pointee``."""

    size = 1

    def __init__(self, pointee):
        self.pointee = pointee

    def is_pointer(self):
        return True

    def __repr__(self):
        return f"{self.pointee!r}*"

    def __eq__(self, other):
        return isinstance(other, PointerType) and self.pointee == other.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))


class ArrayType(CType):
    """A fixed-size array of ``element`` repeated ``count`` times."""

    def __init__(self, element, count):
        self.element = element
        self.count = count

    @property
    def size(self):
        return self.element.size * self.count

    def is_scalar(self):
        return False

    def __repr__(self):
        return f"{self.element!r}[{self.count}]"

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and self.element == other.element
            and self.count == other.count
        )

    def __hash__(self):
        return hash(("array", self.element, self.count))


class StructType(CType):
    """A named struct.  Fields are ``(name, type)`` pairs in order.

    Struct types are interned per program by name; recursive structs
    (``struct node *next``) are supported because pointer fields only
    reference the struct by identity.
    """

    def __init__(self, name):
        self.name = name
        self.fields = []  # list of (name, CType)
        self.complete = False

    def define(self, fields):
        if self.complete:
            raise SemanticError(f"redefinition of struct {self.name}")
        self.fields = list(fields)
        self.complete = True

    @property
    def size(self):
        return sum(ftype.size for _, ftype in self.fields)

    def field_index(self, name):
        for index, (fname, _) in enumerate(self.fields):
            if fname == name:
                return index
        raise SemanticError(f"struct {self.name} has no field {name!r}")

    def field_type(self, name):
        return self.fields[self.field_index(name)][1]

    def field_offset(self, name):
        """Slot offset of field ``name`` from the start of the struct."""
        offset = 0
        for fname, ftype in self.fields:
            if fname == name:
                return offset
            offset += ftype.size
        raise SemanticError(f"struct {self.name} has no field {name!r}")

    def is_scalar(self):
        return False

    def __repr__(self):
        return f"struct {self.name}"

    def __eq__(self, other):
        return isinstance(other, StructType) and self.name == other.name

    def __hash__(self):
        return hash(("struct", self.name))


INT = IntType()
VOID = VoidType()
VOID_PTR = PointerType(VOID)


def pointer_to(ctype):
    return PointerType(ctype)


def is_assignable(target, value):
    """Loose C-style assignability between ``value`` and ``target`` types.

    Mini-C follows pre-ANSI C permissiveness: integers and pointers
    interconvert (needed for NULL comparisons and malloc results), and
    any pointer converts to any other pointer.
    """
    if target == value:
        return True
    if isinstance(value, ArrayType):
        value = PointerType(value.element)  # array-to-pointer decay
    if isinstance(target, IntType) and isinstance(value, (IntType, PointerType)):
        return True
    if isinstance(target, PointerType) and isinstance(value, (IntType, PointerType)):
        return True
    return False
