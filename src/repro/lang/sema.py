"""Semantic analysis for Mini-C.

Resolves struct and enum definitions, binds identifiers to their
declarations, annotates every expression with its :mod:`repro.lang.ctypes`
type, and recognizes the builtin atomic / threading / memory intrinsics
that the lowering pass turns into dedicated IR instructions.
"""

from repro.errors import SemanticError
from repro.lang import ast_nodes as ast
from repro.lang.ctypes import (
    INT,
    VOID,
    ArrayType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    is_assignable,
    pointer_to,
)

#: Builtin functions understood by the frontend.  Values are
#: (min_args, max_args).  ``*_explicit`` forms take a trailing memory
#: order; plain forms default to seq_cst, matching C11 atomics.
BUILTINS = {
    "atomic_load": (1, 1),
    "atomic_store": (2, 2),
    "atomic_exchange": (2, 2),
    "atomic_cmpxchg": (3, 3),
    "atomic_fetch_add": (2, 2),
    "atomic_fetch_sub": (2, 2),
    "atomic_fetch_or": (2, 2),
    "atomic_fetch_and": (2, 2),
    "atomic_load_explicit": (2, 2),
    "atomic_store_explicit": (3, 3),
    "atomic_exchange_explicit": (3, 3),
    "atomic_cmpxchg_explicit": (4, 4),
    "atomic_fetch_add_explicit": (3, 3),
    "atomic_fetch_sub_explicit": (3, 3),
    "atomic_fetch_or_explicit": (3, 3),
    "atomic_fetch_and_explicit": (3, 3),
    "atomic_thread_fence": (0, 1),
    "atomic_fence": (0, 1),
    "thread_create": (1, 2),
    "thread_join": (1, 1),
    "malloc": (1, 1),
    "free": (1, 1),
    "assert": (1, 1),
    "print": (1, 1),
    "cpu_relax": (0, 0),
    "usleep": (1, 1),
    "sched_yield": (0, 0),
}

#: C11 memory-order constants, usable wherever an expression is expected.
MEMORY_ORDER_CONSTANTS = {
    "memory_order_relaxed": 0,
    "memory_order_consume": 1,
    "memory_order_acquire": 2,
    "memory_order_release": 3,
    "memory_order_acq_rel": 4,
    "memory_order_seq_cst": 5,
}

_RESULTLESS_BUILTINS = {
    "atomic_store",
    "atomic_store_explicit",
    "atomic_thread_fence",
    "atomic_fence",
    "thread_join",
    "free",
    "assert",
    "print",
    "cpu_relax",
    "usleep",
    "sched_yield",
}


class Scope:
    """A lexical scope mapping names to (kind, ctype) entries."""

    def __init__(self, parent=None):
        self.parent = parent
        self.entries = {}

    def declare(self, name, kind, ctype, line=None):
        if name in self.entries:
            raise SemanticError(f"redeclaration of {name!r}", line)
        self.entries[name] = (kind, ctype)

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Walks a parsed :class:`Program`, checking and annotating it."""

    def __init__(self, program):
        self.program = program
        self.structs = {}
        self.enums = dict(MEMORY_ORDER_CONSTANTS)
        self.globals = Scope()
        self.functions = {}
        self.current_function = None
        self._loop_depth = 0  # for `continue`
        self._break_depth = 0  # for `break` (loops and switches)

    # -- entry point --------------------------------------------------------

    def analyze(self):
        """Run all checks; returns the (annotated, same) program."""
        self._collect_structs()
        self._collect_enums()
        self._collect_functions()
        self._collect_globals()
        for fn in self.program.functions:
            self._check_function(fn)
        self.program.struct_types = self.structs
        self.program.enum_constants = self.enums
        return self.program

    # -- declarations ---------------------------------------------------------

    def _collect_structs(self):
        for sdef in self.program.structs:
            if sdef.name in self.structs:
                raise SemanticError(f"duplicate struct {sdef.name}", sdef.line)
            self.structs[sdef.name] = StructType(sdef.name)
        for sdef in self.program.structs:
            fields = []
            for fname, fspec in sdef.fields:
                fields.append((fname, self.resolve_type(fspec)))
            self.structs[sdef.name].define(fields)

    def _collect_enums(self):
        for edef in self.program.enums:
            for name, value in edef.members:
                if name in self.enums:
                    raise SemanticError(f"duplicate enum constant {name}", edef.line)
                self.enums[name] = value

    def _collect_functions(self):
        for fn in self.program.functions:
            if fn.name in self.functions:
                raise SemanticError(f"duplicate function {fn.name}", fn.line)
            if fn.name in BUILTINS:
                raise SemanticError(
                    f"function {fn.name} shadows a builtin", fn.line
                )
            return_type = self.resolve_type(fn.return_spec)
            param_types = []
            for param in fn.params:
                ptype = self.resolve_type(param.type_spec)
                if isinstance(ptype, ArrayType):
                    ptype = pointer_to(ptype.element)
                param.ctype = ptype
                param_types.append(ptype)
            fn.return_type = return_type
            fn.param_types = param_types
            self.functions[fn.name] = fn

    def _collect_globals(self):
        for decl in self.program.globals:
            ctype = self.resolve_type(decl.type_spec)
            if ctype.is_void():
                raise SemanticError(
                    f"global {decl.name} has void type", decl.line
                )
            decl.ctype = ctype
            self.globals.declare(decl.name, "global", ctype, decl.line)
            if decl.init is not None:
                self._check_initializer(decl.name, ctype, decl.init, decl.line)

    def _check_initializer(self, name, ctype, init, line):
        if isinstance(init, list):
            if not isinstance(ctype, (ArrayType, StructType)):
                raise SemanticError(
                    f"aggregate initializer for scalar {name}", line
                )
            limit = (
                ctype.count if isinstance(ctype, ArrayType) else len(ctype.fields)
            )
            if len(init) > limit:
                raise SemanticError(
                    f"too many initializers for {name}", line
                )
            for item in init:
                if isinstance(item, list):
                    continue
                self._check_expr(item)
                self._require_constant(item, line)
        else:
            self._check_expr(init)
            self._require_constant(init, line)

    def _require_constant(self, expr, line):
        if not isinstance(expr, (ast.IntLiteral, ast.NullLiteral)):
            if isinstance(expr, ast.Identifier) and expr.binding == "enum":
                return
            if isinstance(expr, ast.Unary) and expr.op == "-" and isinstance(
                expr.operand, ast.IntLiteral
            ):
                return
            raise SemanticError("global initializer must be constant", line)

    # -- type resolution ------------------------------------------------------

    def resolve_type(self, spec):
        """Resolve a syntactic :class:`TypeSpec` to a :class:`CType`."""
        if spec.base == "int":
            base = INT
        elif spec.base == "void":
            base = VOID
        elif spec.base == "struct":
            if spec.struct_name not in self.structs:
                # Allow pointers to not-yet-seen structs (opaque usage).
                self.structs[spec.struct_name] = StructType(spec.struct_name)
            base = self.structs[spec.struct_name]
        else:
            raise SemanticError(f"unknown type {spec.base!r}", spec.line)
        for _ in range(spec.pointer_depth):
            base = pointer_to(base)
        for dim in reversed(spec.array_dims):
            base = ArrayType(base, dim)
        return base

    # -- functions -------------------------------------------------------------

    def _check_function(self, fn):
        self.current_function = fn
        scope = Scope(self.globals)
        for param in fn.params:
            scope.declare(param.name, "param", param.ctype, param.line)
        self._check_block(fn.body, scope)
        self.current_function = None

    def _check_block(self, block, scope):
        inner = Scope(scope)
        for stmt in block.statements:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt, scope):
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.LocalDecl):
            ctype = self.resolve_type(stmt.type_spec)
            if ctype.is_void():
                raise SemanticError(
                    f"local {stmt.name} has void type", stmt.line
                )
            stmt.ctype = ctype
            scope.declare(stmt.name, "local", ctype, stmt.line)
            if stmt.init is not None and not isinstance(stmt.init, list):
                value_type = self._check_expr(stmt.init, scope)
                if not is_assignable(ctype, value_type) and not isinstance(
                    ctype, (ArrayType, StructType)
                ):
                    raise SemanticError(
                        f"cannot initialize {ctype!r} from {value_type!r}",
                        stmt.line,
                    )
            elif isinstance(stmt.init, list):
                for item in stmt.init:
                    if not isinstance(item, list):
                        self._check_expr(item, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then_body, scope)
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, scope)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            loop_scope = Scope(scope)
            self._loop_depth += 1
            self._break_depth += 1
            self._check_stmt(stmt.body, loop_scope)
            self._loop_depth -= 1
            self._break_depth -= 1
            self._check_expr(stmt.cond, loop_scope)
        elif isinstance(stmt, ast.For):
            for_scope = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, for_scope)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, for_scope)
            if stmt.step is not None:
                self._check_expr(stmt.step, for_scope)
            self._in_loop(stmt.body, for_scope)
        elif isinstance(stmt, ast.Break):
            if self._break_depth == 0:
                raise SemanticError("break outside of loop or switch", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise SemanticError("continue outside of loop", stmt.line)
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value_type = self._check_expr(stmt.value, scope)
                if self.current_function.return_type.is_void():
                    raise SemanticError(
                        "returning a value from a void function", stmt.line
                    )
                if not is_assignable(self.current_function.return_type, value_type):
                    raise SemanticError(
                        f"cannot return {value_type!r} from function returning "
                        f"{self.current_function.return_type!r}",
                        stmt.line,
                    )
            elif not self.current_function.return_type.is_void():
                raise SemanticError(
                    "missing return value in non-void function", stmt.line
                )
        elif isinstance(stmt, (ast.Goto, ast.Label, ast.InlineAsm)):
            pass
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}")

    def _in_loop(self, body, scope):
        self._loop_depth += 1
        self._break_depth += 1
        self._check_stmt(body, scope)
        self._loop_depth -= 1
        self._break_depth -= 1

    def _check_switch(self, stmt, scope):
        self._check_expr(stmt.subject, scope)
        seen_values = set()
        seen_default = False
        self._break_depth += 1
        for label, body in stmt.cases:
            if label is None:
                if seen_default:
                    raise SemanticError("duplicate default label", stmt.line)
                seen_default = True
            else:
                self._check_expr(label, scope)
                value = self._case_value(label)
                if value in seen_values:
                    raise SemanticError(
                        f"duplicate case label {value}", label.line
                    )
                seen_values.add(value)
            arm_scope = Scope(scope)
            for inner in body:
                self._check_stmt(inner, arm_scope)
        self._break_depth -= 1

    def _case_value(self, label):
        if isinstance(label, ast.IntLiteral):
            return label.value
        if isinstance(label, ast.Identifier) and label.binding == "enum":
            return label.enum_value
        raise SemanticError("case label must be constant", label.line)

    # -- expressions -------------------------------------------------------------

    def _check_expr(self, expr, scope=None):
        scope = scope or self.globals
        ctype = self._expr_type(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_type(self, expr, scope):
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.NullLiteral):
            return PointerType(VOID)
        if isinstance(expr, ast.StringLiteral):
            return PointerType(INT)
        if isinstance(expr, ast.Identifier):
            return self._identifier_type(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._unary_type(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary_type(expr, scope)
        if isinstance(expr, ast.Conditional):
            self._check_expr(expr.cond, scope)
            then_type = self._check_expr(expr.then_expr, scope)
            self._check_expr(expr.else_expr, scope)
            return then_type
        if isinstance(expr, ast.Assign):
            return self._assign_type(expr, scope)
        if isinstance(expr, ast.Index):
            return self._index_type(expr, scope)
        if isinstance(expr, ast.Member):
            return self._member_type(expr, scope)
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope)
        if isinstance(expr, ast.SizeOf):
            expr.size_value = self.resolve_type(expr.type_spec).size
            return INT
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.operand, scope)
            return self.resolve_type(expr.type_spec)
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _identifier_type(self, expr, scope):
        if expr.name in self.enums:
            expr.binding = "enum"
            expr.enum_value = self.enums[expr.name]
            return INT
        entry = scope.lookup(expr.name)
        if entry is not None:
            kind, ctype = entry
            expr.binding = kind
            return ctype
        if expr.name in self.functions:
            expr.binding = "function"
            return PointerType(VOID)
        raise SemanticError(f"undeclared identifier {expr.name!r}", expr.line)

    def _unary_type(self, expr, scope):
        operand_type = self._check_expr(expr.operand, scope)
        op = expr.op
        if op in ("-", "~", "!"):
            return INT
        if op in ("++", "--"):
            self._require_lvalue(expr.operand)
            return operand_type
        if op == "*":
            if isinstance(operand_type, PointerType):
                pointee = operand_type.pointee
                if pointee.is_void():
                    raise SemanticError("dereferencing void pointer", expr.line)
                return pointee
            if isinstance(operand_type, ArrayType):
                return operand_type.element
            raise SemanticError(
                f"cannot dereference non-pointer {operand_type!r}", expr.line
            )
        if op == "&":
            self._require_lvalue(expr.operand)
            return pointer_to(operand_type)
        raise SemanticError(f"unknown unary operator {op!r}", expr.line)

    def _binary_type(self, expr, scope):
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op == ",":
            return right
        if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return INT
        if op in ("+", "-"):
            # Pointer arithmetic: ptr +- int scales by pointee size.
            if isinstance(left, (PointerType, ArrayType)):
                return left if isinstance(left, PointerType) else pointer_to(
                    left.element
                )
            if isinstance(right, (PointerType, ArrayType)) and op == "+":
                return right if isinstance(right, PointerType) else pointer_to(
                    right.element
                )
            return INT
        return INT

    def _assign_type(self, expr, scope):
        target_type = self._check_expr(expr.target, scope)
        value_type = self._check_expr(expr.value, scope)
        self._require_lvalue(expr.target)
        if not is_assignable(target_type, value_type):
            raise SemanticError(
                f"cannot assign {value_type!r} to {target_type!r}", expr.line
            )
        return target_type

    def _index_type(self, expr, scope):
        base_type = self._check_expr(expr.base, scope)
        self._check_expr(expr.index, scope)
        if isinstance(base_type, ArrayType):
            return base_type.element
        if isinstance(base_type, PointerType):
            if base_type.pointee.is_void():
                raise SemanticError("indexing void pointer", expr.line)
            return base_type.pointee
        raise SemanticError(f"cannot index {base_type!r}", expr.line)

    def _member_type(self, expr, scope):
        base_type = self._check_expr(expr.base, scope)
        if expr.arrow:
            if not isinstance(base_type, PointerType) or not isinstance(
                base_type.pointee, StructType
            ):
                raise SemanticError(
                    f"-> applied to non-struct-pointer {base_type!r}", expr.line
                )
            struct = base_type.pointee
        else:
            if not isinstance(base_type, StructType):
                raise SemanticError(
                    f". applied to non-struct {base_type!r}", expr.line
                )
            struct = base_type
        if not struct.complete:
            raise SemanticError(
                f"use of incomplete struct {struct.name}", expr.line
            )
        expr.struct_type = struct
        return struct.field_type(expr.field)

    def _call_type(self, expr, scope):
        if expr.name in BUILTINS:
            expr.is_builtin = True
            return self._builtin_type(expr, scope)
        fn = self.functions.get(expr.name)
        if fn is None:
            raise SemanticError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(fn.param_types):
            raise SemanticError(
                f"{expr.name} expects {len(fn.param_types)} arguments, got "
                f"{len(expr.args)}",
                expr.line,
            )
        for arg, ptype in zip(expr.args, fn.param_types):
            arg_type = self._check_expr(arg, scope)
            if isinstance(arg_type, ArrayType):
                arg_type = pointer_to(arg_type.element)
            if not is_assignable(ptype, arg_type):
                raise SemanticError(
                    f"argument of type {arg_type!r} does not match parameter "
                    f"{ptype!r} of {expr.name}",
                    expr.line,
                )
        return fn.return_type

    def _builtin_type(self, expr, scope):
        name = expr.name
        low, high = BUILTINS[name]
        if not low <= len(expr.args) <= high:
            raise SemanticError(
                f"builtin {name} expects between {low} and {high} arguments",
                expr.line,
            )
        arg_types = [self._check_expr(arg, scope) for arg in expr.args]
        if name.startswith("atomic_") and name not in (
            "atomic_thread_fence",
            "atomic_fence",
        ):
            first = arg_types[0]
            if isinstance(first, ArrayType):
                first = pointer_to(first.element)
            if not isinstance(first, PointerType):
                raise SemanticError(
                    f"first argument of {name} must be a pointer", expr.line
                )
            if name.startswith(("atomic_load", "atomic_exchange",
                                "atomic_cmpxchg", "atomic_fetch")):
                pointee = first.pointee
                return pointee if pointee.is_scalar() else INT
        if name == "malloc":
            return PointerType(VOID)
        if name == "thread_create":
            fn_arg = expr.args[0]
            if not (
                isinstance(fn_arg, ast.Identifier) and fn_arg.binding == "function"
            ):
                raise SemanticError(
                    "thread_create requires a function name", expr.line
                )
            return INT
        if name in _RESULTLESS_BUILTINS:
            return VOID
        return INT

    def _require_lvalue(self, expr):
        if isinstance(expr, ast.Identifier):
            if expr.binding in ("local", "param", "global"):
                return
            raise SemanticError(
                f"{expr.name!r} is not assignable", expr.line
            )
        if isinstance(expr, (ast.Index, ast.Member)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise SemanticError("expression is not an lvalue", expr.line)


def analyze(program):
    """Run semantic analysis on ``program`` and return it annotated."""
    return SemanticAnalyzer(program).analyze()
