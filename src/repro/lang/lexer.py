"""Hand-written lexer for Mini-C source text."""

from repro.errors import LexerError
from repro.lang.tokens import KEYWORDS, OPERATORS, Token, TokenKind


class Lexer:
    """Scans Mini-C source text into a list of :class:`Token` objects.

    The lexer handles ``//`` and ``/* */`` comments, decimal / hex /
    octal / character literals, string literals with simple escapes, and
    all Mini-C operators and keywords.
    """

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self):
        """Return the full token stream, terminated by an EOF token."""
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internal helpers ------------------------------------------------

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "#":
                # Preprocessor-style lines (e.g. ``#define``) are treated
                # as comments: the corpus uses them only for readability.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexerError(
                        "unterminated block comment", start_line, start_col
                    )
            else:
                return

    def _next_token(self):
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)

        ch = self._peek()
        if ch.isascii() and (ch.isalpha() or ch == "_"):
            return self._lex_ident(line, column)
        if ch in "0123456789":
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)

        for spelling, kind in OPERATORS:
            if self.source.startswith(spelling, self.pos):
                self._advance(len(spelling))
                return Token(kind, spelling, line, column)

        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _lex_ident(self, line, column):
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isascii()
            and (self._peek().isalnum() or self._peek() == "_")
        ):
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, column)

    def _lex_number(self, line, column):
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self.pos < len(self.source) and (
                self._peek().isdigit() or self._peek().lower() in "abcdef"
            ):
                self._advance()
            text = self.source[start : self.pos]
            value = int(text, 16)
        else:
            while self.pos < len(self.source) and self._peek() in "0123456789":
                self._advance()
            text = self.source[start : self.pos]
            if text.startswith("0") and len(text) > 1:
                try:
                    value = int(text, 8)
                except ValueError:
                    raise LexerError(
                        f"invalid octal literal {text!r}", line, column
                    ) from None
            else:
                value = int(text)
        # Swallow C integer suffixes (``UL``, ``LL`` ...): Mini-C has one
        # integer type, so the suffix carries no information.
        while self.pos < len(self.source) and self._peek() in "uUlL":
            self._advance()
            text = self.source[start : self.pos]
        return Token(TokenKind.INT_LIT, text, line, column, value)

    _ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'"}

    def _lex_string(self, line, column):
        self._advance()  # opening quote
        chars = []
        while True:
            if self.pos >= len(self.source):
                raise LexerError("unterminated string literal", line, column)
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                chars.append(self._ESCAPES.get(esc, esc))
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        text = "".join(chars)
        return Token(TokenKind.STRING_LIT, text, line, column, text)

    def _lex_char(self, line, column):
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            ch = self._ESCAPES.get(self._peek(), self._peek())
        self._advance()
        if self._peek() != "'":
            raise LexerError("unterminated character literal", line, column)
        self._advance()
        return Token(TokenKind.CHAR_LIT, ch, line, column, ord(ch))


def tokenize(source):
    """Convenience wrapper: lex ``source`` and return the token list."""
    return Lexer(source).tokenize()
