"""Legacy setup shim: allows editable installs without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["atomig = repro.cli:main"]},
)
