"""Robustness gate: static verdicts must agree with exploration.

Two jobs:

- **Soundness across the corpus**: for every Table 2 corpus module and
  every litmus-gallery entry, checking with the robustness pre-pass
  enabled must produce the same verdict as full exploration — and at
  least one corpus module must verify with *zero* explored states
  (``verdict_source == "robustness"``).
- **Snapshot regeneration**: rewrites
  ``benchmarks/results/robustness_corpus.txt`` (the per-benchmark
  original/atomig classification CI diffs against ``atomig robustness
  --corpus``), so a silent change in any module's robustness class
  fails the gate loudly.
"""

import os

import pytest

from repro.analysis.robustness import analyze_robustness
from repro.api import check_module, compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.bench.tables import TABLE2_BENCHMARKS
from repro.core.config import PortingLevel
from repro.mc.litmus import LITMUS_TESTS

#: Checker bounds matching the Table 2 harness.
MAX_STEPS = 600


@pytest.fixture(scope="module")
def ported_corpus():
    """name -> atomig-ported module for the Table 2 corpus."""
    ported = {}
    for name in TABLE2_BENCHMARKS:
        module = compile_source(BENCHMARKS[name].mc_source(), name)
        ported[name], _report = port_module(module, PortingLevel.ATOMIG)
    return ported


def test_fast_path_agrees_with_exploration_on_table2(ported_corpus):
    sources = {}
    for name, module in sorted(ported_corpus.items()):
        fast = check_module(module, model="wmm", max_steps=MAX_STEPS,
                            robustness=True)
        slow = check_module(module, model="wmm", max_steps=MAX_STEPS,
                            robustness=False)
        assert fast.outcome == slow.outcome, name
        assert fast.ok == slow.ok, name
        sources[name] = fast.verdict_source
    # At least one module proves robust and never explores a state.
    assert "robustness" in sources.values(), sources


def test_some_corpus_module_verifies_with_zero_states(ported_corpus):
    zero_state = []
    for name, module in sorted(ported_corpus.items()):
        result = check_module(module, model="wmm", max_steps=MAX_STEPS,
                              robustness=True)
        if result.verdict_source == "robustness":
            assert result.ok, name
            assert result.states_explored == 0, name
            zero_state.append(name)
    assert zero_state, "no corpus module verified statically"


def test_fast_path_agrees_with_exploration_on_litmus_gallery():
    for name in sorted(LITMUS_TESTS):
        source, _expected = LITMUS_TESTS[name]
        module = compile_source(source, name)
        for model in ("tso", "wmm"):
            fast = check_module(module, model=model, max_steps=400,
                                robustness=True)
            slow = check_module(module, model=model, max_steps=400,
                                robustness=False)
            assert fast.outcome == slow.outcome, (name, model)


def test_static_verdicts_never_contradict_exploration(ported_corpus):
    """Robust claim => exploration finds no violation (soundness)."""
    for name, module in sorted(ported_corpus.items()):
        result = analyze_robustness(module, model="wmm")
        if result.robust:
            explored = check_module(module, model="wmm",
                                    max_steps=MAX_STEPS, robustness=False)
            assert explored.ok, (
                f"{name}: statically robust but exploration disagrees"
            )


def _corpus_snapshot_lines(model="wmm"):
    """Mirror of ``atomig robustness --corpus`` (must match exactly)."""
    lines = []
    for name in sorted(BENCHMARKS):
        benchmark = BENCHMARKS[name]
        source = benchmark.mc_source or benchmark.perf_source
        if source is None:
            continue
        module = compile_source(source(), name)
        fields = []
        for level in ("original", "atomig"):
            work = module
            if level != "original":
                work, _report = port_module(
                    module.clone(), PortingLevel.ATOMIG
                )
            result = analyze_robustness(work, model=model)
            verdict = "robust" if result.robust else "non-robust"
            fields.append(f"{level}={verdict}")
        lines.append(f"{name:20s} [{model}] {'  '.join(fields)}")
    return lines


def test_robustness_corpus_snapshot_regenerated(results_dir):
    lines = _corpus_snapshot_lines()
    assert lines, "corpus produced no classifications"
    # Porting must prove additional modules robust, never fewer.
    original_robust = sum("original=robust" in line for line in lines)
    atomig_robust = sum("atomig=robust" in line for line in lines)
    assert atomig_robust > 0, "no ported corpus module is robust"
    assert atomig_robust >= original_robust
    path = os.path.join(results_dir, "robustness_corpus.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    assert os.path.getsize(path) > 0
