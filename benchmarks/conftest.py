"""Benchmark-suite fixtures: result artifacts and table printing."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Print a formatted table and persist it under benchmarks/results/."""

    def _record(name, text):
        print()
        print(text)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return path

    return _record
