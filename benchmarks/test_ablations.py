"""Ablation benchmarks for the design decisions called out in DESIGN.md.

1. spinloop definition: the stricter literature definition (no stores in
   the loop) misses CAS-acquire loops -> ck_spinlock_mcs stays buggy;
2. alias exploration ("once atomic, always atomic"): without it, the
   Figure 4 test-and-set lock's plain release store stays plain -> bug;
3. implicit vs explicit barriers: forcing explicit fences at every
   marked access costs substantially more than implicit SC atomics;
4. pre-analysis inlining: without it, spinloops hidden behind helper
   calls lose their cross-function controls.
"""

import pytest

from repro.api import check_module, compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.bench.tables import _mean_cycles
from repro.core.config import AtoMigConfig, PortingLevel


def _check(module, **kwargs):
    return check_module(module, model="wmm", max_steps=600, **kwargs)


#: Figure 3, Spinloop 2 shape: the wait loop contains a (constant)
#: store — the paper's definition still classifies it as a spinloop,
#: the stricter literature definition (no stores at all) does not.
_CONSTANT_STORE_SPINLOOP = """
int flag = 0;
int msg = 0;
int hint = 0;

void writer() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(writer);
    do {
        hint = 1;
    } while (flag != 1);
    int data = msg;
    assert(data == 42);
    thread_join(t);
    return 0;
}
"""


def test_ablation_strict_spinloop_definition(benchmark, record_table):
    """The paper (§3.5): stricter definitions detect fewer sync points."""
    module = compile_source(_CONSTANT_STORE_SPINLOOP, "spindef")

    def run():
        relaxed, rep_relaxed = port_module(module, PortingLevel.ATOMIG)
        strict, rep_strict = port_module(
            module,
            PortingLevel.ATOMIG,
            config=AtoMigConfig(strict_spinloop_definition=True),
        )
        return _check(relaxed), rep_relaxed, _check(strict), rep_strict

    relaxed_result, rep_relaxed, strict_result, rep_strict = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    record_table(
        "ablation_spindef",
        "Ablation: spinloop definition (Figure 3, Spinloop-2 shape)\n"
        f"paper definition : {'ok' if relaxed_result.ok else 'VIOLATION'} "
        f"({rep_relaxed.num_spinloops} spinloops)\n"
        f"strict definition: {'ok' if strict_result.ok else 'VIOLATION'} "
        f"({rep_strict.num_spinloops} spinloops)",
    )
    assert relaxed_result.ok
    assert rep_relaxed.num_spinloops >= 1
    assert rep_strict.num_spinloops == 0  # the store disqualifies it
    assert not strict_result.ok  # and the MP bug survives


def test_ablation_alias_exploration(benchmark, record_table):
    """Without sticky buddies, Figure 4's unlock store stays plain."""
    module = compile_source(
        BENCHMARKS["ck_spinlock_cas"].mc_source(), "tas"
    )

    def run():
        with_alias, _ = port_module(module, PortingLevel.ATOMIG)
        without, _ = port_module(
            module,
            PortingLevel.ATOMIG,
            config=AtoMigConfig(alias_exploration=False),
        )
        return _check(with_alias), _check(without)

    with_result, without_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_table(
        "ablation_alias",
        "Ablation: alias exploration on ck_spinlock_cas (WMM)\n"
        f"with sticky buddies   : {'ok' if with_result.ok else 'VIOLATION'}\n"
        f"without sticky buddies: {'ok' if without_result.ok else 'VIOLATION'}",
    )
    assert with_result.ok
    assert not without_result.ok


def test_ablation_implicit_vs_explicit_barriers(benchmark, record_table):
    """Implicit barriers are the cheaper transformation target [48]."""
    module = compile_source(
        BENCHMARKS["ck_spinlock_cas"].perf_source(), "cas_perf"
    )

    def run():
        implicit, _ = port_module(module, PortingLevel.ATOMIG)
        explicit, _ = port_module(
            module,
            PortingLevel.ATOMIG,
            config=AtoMigConfig(force_explicit_barriers=True),
        )
        return _mean_cycles(implicit), _mean_cycles(explicit)

    implicit_cycles, explicit_cycles = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = explicit_cycles / implicit_cycles
    record_table(
        "ablation_barriers",
        "Ablation: implicit vs explicit barriers (ck_spinlock_cas)\n"
        f"implicit (SC atomics): {implicit_cycles:.0f} cycles\n"
        f"explicit (fences)    : {explicit_cycles:.0f} cycles "
        f"({ratio:.2f}x)",
    )
    assert ratio > 1.1  # explicit fencing costs measurably more


def test_ablation_inlining(benchmark, record_table):
    """Cross-function spinloops need the pre-inlining pass (§3.5)."""
    source = """
int flag = 0;
int msg = 0;

int current_flag() { return flag; }

void writer() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(writer);
    while (current_flag() != 1) { }
    int data = msg;
    assert(data == 42);
    thread_join(t);
    return 0;
}
"""
    module = compile_source(source, "crossfn")

    def run():
        with_inline, rep_with = port_module(module, PortingLevel.ATOMIG)
        without, rep_without = port_module(
            module,
            PortingLevel.ATOMIG,
            config=AtoMigConfig(inline_before_analysis=False),
        )
        return (
            _check(with_inline), rep_with,
            _check(without), rep_without,
        )

    with_result, rep_with, without_result, rep_without = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_table(
        "ablation_inline",
        "Ablation: pre-analysis inlining (cross-function spinloop)\n"
        f"with inlining   : {'ok' if with_result.ok else 'VIOLATION'} "
        f"({len(rep_with.spin_controls)} control locations)\n"
        f"without inlining: {'ok' if without_result.ok else 'VIOLATION'} "
        f"({len(rep_without.spin_controls)} control locations)",
    )
    assert with_result.ok
    assert rep_with.spin_controls  # flag was identified
    assert not without_result.ok  # the helper hid the spin control
