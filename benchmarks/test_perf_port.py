"""Porting-throughput gate: the parallel + cached Table 3 harness must
beat the serial cold path, serial and parallel ports must be
bit-identical, and the run must leave a ``BENCH_port.json`` trail
(wall times, speedup, per-stage profile) so the porting-throughput
trajectory is tracked from PR 4 onward (EXPERIMENTS.md).

Two regimes:

- **serial/cold** — ``table3`` exactly as the pre-PR pipeline ran it:
  one process, no frontend cache.  This is the honest baseline.
- **parallel/warm** — ``table3(jobs=4)`` with the on-disk parsed-module
  cache warmed, i.e. the steady state of a CI run that executes the
  harness repeatedly over an unchanged corpus.

The wall-clock gate is asserted on any multi-core machine
(``os.cpu_count() >= 2``): the persistent pool + caches must deliver
>1.5x at ``jobs=4`` with even two cores, and ≥3x on a ≥4-core box
(GitHub's ubuntu-latest runners have 4).  Single-core boxes cannot beat
the serial loop with a process pool, so they record the measured
numbers in BENCH_port.json with ``gate_enforced: false`` and skip the
assertion — the JSON field always tells the truth about whether the
floor was applied, and which floor.

Bit-identity is checked on the Table 2 + alias corpus: the printed IR
of every port produced through the process pool must equal the printed
IR of the same port done in-process, byte for byte.
"""

import json
import os
import time

import pytest

from repro.api import compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.bench.synth import PAPER_TABLE3, generate_codebase
from repro.bench.tables import ALIAS_BENCHMARKS, TABLE2_BENCHMARKS, table3
from repro.core.config import PortingLevel
from repro.core.parallel import PortTask, run_port_tasks
from repro.core.profile import STAGE_ORDER
from repro.ir.printer import print_module

SCALE = 100
JOBS = 4
#: Gate applies on any multi-core machine ...
MIN_CPUS = 2
#: ... at this floor; a full ``JOBS``-core machine must clear the
#: stretch floor instead.
SPEEDUP_FLOOR = 1.5
SPEEDUP_STRETCH = 3.0
IDENTITY_CORPUS = TABLE2_BENCHMARKS + ALIAS_BENCHMARKS


def _active_floor():
    """(floor, enforced) for this machine — recorded verbatim in JSON."""
    cpus = os.cpu_count() or 1
    if cpus >= JOBS:
        return SPEEDUP_STRETCH, True
    if cpus >= MIN_CPUS:
        return SPEEDUP_FLOOR, True
    return SPEEDUP_FLOOR, False


def _speedup(serial_seconds, parallel_seconds):
    """Wall-clock ratio with a near-zero guard (timer-resolution runs)."""
    if parallel_seconds < 1e-6:
        return 0.0
    return serial_seconds / parallel_seconds

#: Columns that must be identical between the serial and parallel
#: harness paths (everything except wall-clock noise).
STATIC_COLUMNS = (
    "application", "sloc", "spinloops", "optiloops",
    "orig_explicit", "orig_implicit",
    "atomig_explicit", "atomig_implicit", "naive_implicit",
)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """Route the frontend cache to a throwaway directory."""
    path = tmp_path_factory.mktemp("atomig-cache")
    previous = os.environ.get("ATOMIG_CACHE_DIR")
    os.environ["ATOMIG_CACHE_DIR"] = str(path)
    yield str(path)
    if previous is None:
        os.environ.pop("ATOMIG_CACHE_DIR", None)
    else:
        os.environ["ATOMIG_CACHE_DIR"] = previous


@pytest.fixture(scope="module")
def serial_run():
    """(rows, wall_seconds) of the pre-PR-shaped serial cold run."""
    started = time.perf_counter()
    rows = table3(scale=SCALE, frontend_cache=False, profile=True)
    return rows, time.perf_counter() - started


@pytest.fixture(scope="module")
def parallel_run(cache_dir):
    """(rows, wall_seconds) of the jobs=4 run over a warmed cache."""
    # Warm the on-disk cache the way a CI steady state would be: each
    # app's module is compiled once and pickled; the pool workers then
    # hit the disk entries instead of re-running the frontend.
    for app_name in PAPER_TABLE3:
        source = generate_codebase(app_name, scale=SCALE, seed=0)
        compile_source(source, app_name, cache=True)
    started = time.perf_counter()
    rows = table3(scale=SCALE, jobs=JOBS, frontend_cache=True, profile=True)
    return rows, time.perf_counter() - started


@pytest.fixture(scope="module")
def identity_results():
    """Printed IR per (program, level): in-process vs pool-parallel."""
    levels = ("atomig", "naive")
    tasks = []
    inline = {}
    for name in IDENTITY_CORPUS:
        source = BENCHMARKS[name].mc_source()
        module = compile_source(source, name)
        for level in levels:
            ported, _report = port_module(module, PortingLevel(level))
            inline[(name, level)] = print_module(ported)
            tasks.append(PortTask(
                name=name, source=source, level=level, emit_ir=True,
            ))
    serial_out = run_port_tasks(tasks, jobs=None)
    parallel_out = run_port_tasks(tasks, jobs=JOBS)
    return {
        (task.name, task.level): {
            "inline": inline[(task.name, task.level)],
            "serial": serial.ir_text,
            "parallel": parallel.ir_text,
        }
        for task, serial, parallel in zip(tasks, serial_out, parallel_out)
    }


def test_static_columns_identical(serial_run, parallel_run):
    """Parallelism must not change a single reported statistic."""
    serial_rows, _ = serial_run
    parallel_rows, _ = parallel_run
    for serial, parallel in zip(serial_rows, parallel_rows):
        for column in STATIC_COLUMNS:
            assert serial[column] == parallel[column], (
                serial["application"], column
            )


def test_ports_bit_identical(identity_results):
    """Pool ports == serial-task ports == plain in-process ports."""
    for key, texts in identity_results.items():
        assert texts["serial"] == texts["inline"], key
        assert texts["parallel"] == texts["inline"], key


def test_profile_attached(serial_run):
    rows, _ = serial_run
    for row in rows:
        stats = row["_stats"]
        assert stats["ports"] >= 2  # atomig + naive
        assert stats["total_seconds"] > 0
        recorded = set(stats["stage_seconds"])
        assert recorded <= set(STAGE_ORDER)
        for stage in ("clone", "alias", "atomize", "fences"):
            assert stage in recorded


def test_parallel_speedup(serial_run, parallel_run):
    """The headline gate: >1.5x at jobs=4 on any multi-core machine
    (>=3x on a full 4-core box)."""
    _rows, serial_seconds = serial_run
    _prows, parallel_seconds = parallel_run
    speedup = _speedup(serial_seconds, parallel_seconds)
    floor, enforced = _active_floor()
    if not enforced:
        pytest.skip(
            f"{os.cpu_count()} CPU(s) < {MIN_CPUS}: a process pool "
            f"cannot beat the serial loop here (measured {speedup:.2f}x; "
            "recorded in BENCH_port.json with gate_enforced=false)"
        )
    assert speedup >= floor, (
        f"table3 scale={SCALE} jobs={JOBS}: serial {serial_seconds:.2f}s, "
        f"parallel {parallel_seconds:.2f}s -> {speedup:.2f}x "
        f"< {floor}x on {os.cpu_count()} CPUs"
    )


def test_bench_port_json_regenerated(serial_run, parallel_run,
                                     identity_results, results_dir):
    from repro.core.workers import pool_stats

    serial_rows, serial_seconds = serial_run
    parallel_rows, parallel_seconds = parallel_run
    speedup = _speedup(serial_seconds, parallel_seconds)
    floor, enforced = _active_floor()
    payload = {
        "scale": SCALE,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "min_cpus": MIN_CPUS,
        "speedup_floor": floor,
        "gate_enforced": enforced,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        # Per-worker busy time from the persistent pools: shows skew
        # (one worker stuck on a lumpy port) that aggregate wall
        # seconds hide.
        "pools": pool_stats(),
        "bit_identical": {
            f"{name}:{level}": (
                texts["serial"] == texts["inline"]
                and texts["parallel"] == texts["inline"]
            )
            for (name, level), texts in identity_results.items()
        },
        "rows": [
            {
                "application": row["application"],
                "sloc": row["sloc"],
                "serial_build_seconds": row["build_seconds"],
                "parallel_build_seconds": prow["build_seconds"],
                "serial_atomig_seconds": row["atomig_seconds"],
                "parallel_atomig_seconds": prow["atomig_seconds"],
                "profile": row["_stats"],
            }
            for row, prow in zip(serial_rows, parallel_rows)
        ],
    }
    path = os.path.join(results_dir, "BENCH_port.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.getsize(path) > 0
