"""Exploration-performance gate: reduction, engine identity, throughput.

Four families of guarantees, all measured on the Table-2 corpus and
recorded in ``BENCH_mc.json`` so the perf trajectory is tracked from
PR 2 onward (EXPERIMENTS.md):

- **Reduction** (PR 2): sleep-set POR + macro-stepping must stay ≥5x on
  its headroom programs and verdict-equivalent to the unreduced oracle
  everywhere.
- **Engine identity** (PR 7): the in-place engine (undo-log DFS +
  incremental digests) must report the *same verdict and the same
  exploration counts* as the reference clone engine on every program —
  the contract that lets callers treat the engine as a pure substrate
  choice.
- **Throughput** (PR 7): the in-place engine must clear an absolute
  states/second floor, and beat the clone engine's wall clock on most
  programs.  Floors are set from measured single-core container runs
  with ≥2x headroom for timer noise (see EXPERIMENTS.md for the
  methodology and the honest numbers).
- **Source-DPOR** (PR 9): the ``por="dpor"`` backend must stay
  verdict-identical to sleep everywhere, beat sleep ≥2x on the median
  of its gate trio (states_visited), never exceed sleep on the
  conflict-light programs, and stay under an honesty ceiling on the
  convergent spin-loop programs — where the *stateful* sleep+dedup
  engine structurally wins because distinct Mazurkiewicz classes
  collapse into few unique states, a regime stateless DPOR cannot
  exploit by construction.

Gate workloads are the Table-2 corpus programs; where the default
model-checking client is fully lock-serialized (one contended address —
a regime where conflict-based partial-order reduction provably has
little headroom), the program's ``gate_source`` client exercises the
same data structure with disjoint-address parallelism, which is where
the reduction must deliver.
"""

import json
import os
import statistics

import pytest

from repro.api import compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.bench.tables import TABLE2_BENCHMARKS
from repro.core.config import PortingLevel
from repro.mc.explorer import check_module

BOUNDS = dict(max_steps=3000, max_states=1_500_000)
#: POR reduction bar.  Through PR 6 the acceptance floor was three
#: programs over 5x; PR 7's liveness env GC dedups states that differ
#: only in dead registers *before* POR runs, shrinking the unreduced
#: oracle itself 1.8x-2.9x on ck_ring/ck_spinlock_cas/ck_sequence —
#: much of the redundancy POR used to claim is now simply gone.  The
#: ratio floor therefore drops to two programs, and the
#: ``SEED_REDUCED_CEILING`` gate below guarantees the change is a
#: strict improvement: total reduced exploration work per program must
#: never exceed the pre-GC (PR 2-6) recorded counts.
REDUCTION_FLOOR = 5.0
MIN_PROGRAMS_OVER_FLOOR = 2
#: Reduced states_explored recorded at the PR-6 seed (pre env GC).
#: End-to-end work must stay at or under these — monotone across PRs.
SEED_REDUCED_CEILING = {
    "ck_ring": 35,
    "ck_spinlock_cas": 28,
    "ck_spinlock_mcs": 133,
    "ck_sequence": 76,
    "lf_hash": 37,
}
#: Absolute throughput floor for the reduced in-place runs.  Measured
#: 8.2k-16k states/s on the single-core CI container (best-of-5); the
#: floor keeps ~2x headroom for scheduler noise on shared runners.
STATES_PER_SECOND_FLOOR = 4000
MIN_PROGRAMS_OVER_SPS_FLOOR = 3
#: The in-place engine must beat the clone engine's wall clock by this
#: factor on the corpus median (measured 1.9x-4.0x per program).
ENGINE_SPEEDUP_FLOOR = 1.3
#: Source-DPOR gate trio: the median sleep-vs-dpor states_visited ratio
#: over these programs must clear the floor (measured 0.71x / 18.3x /
#: 2.44x → median 2.44x; floor keeps headroom for count drift).
DPOR_GATE_PROGRAMS = ("ck_ring", "ck_spinlock_mcs", "lf_hash")
DPOR_MEDIAN_FLOOR = 2.0
#: Conflict-light programs (locks, disjoint addresses): DPOR must never
#: visit more states than sleep — this is its headline regime.
DPOR_CONFLICT_LIGHT = ("ck_spinlock_cas", "ck_spinlock_mcs", "lf_hash")
#: Convergent spin-loop programs where stateless DPOR structurally
#: loses to the stateful sleep+dedup engine (equivalence classes
#: outnumber unique states).  Bounded, not hidden: DPOR may visit at
#: most this multiple of sleep's states (measured 1.41x / 27.4x).
DPOR_CYCLE_HEAVY = ("ck_ring", "ck_sequence")
DPOR_BLOWUP_CEILING = 40.0


def _rate(states, wall_seconds):
    """states/s with the near-zero-wall guard the stats property uses."""
    if wall_seconds < 1e-6:
        return 0.0
    return states / wall_seconds


def _engine_cell(result):
    return {
        "outcome": result.outcome,
        "states_explored": result.states_explored,
        "states_visited": result.stats.states_visited,
        "transitions": result.stats.transitions,
        "wall_seconds": result.stats.wall_seconds,
        "states_per_second": _rate(
            result.stats.states_visited, result.stats.wall_seconds
        ),
    }


def _measure_rows():
    rows = []
    for name in TABLE2_BENCHMARKS:
        bench = BENCHMARKS[name]
        builder = bench.gate_source or bench.mc_source
        module = compile_source(builder(), name)
        ported, _report = port_module(module, PortingLevel.ATOMIG)
        oracle = check_module(ported, model="wmm", reduce=False, **BOUNDS)
        inplace = check_module(ported, model="wmm", reduce=True,
                               engine="inplace", **BOUNDS)
        clone = check_module(ported, model="wmm", reduce=True,
                             engine="clone", **BOUNDS)
        dpor = check_module(ported, model="wmm", por="dpor", **BOUNDS)
        rows.append({
            "program": name,
            "client": "gate" if bench.gate_source else "mc",
            "verdict": inplace.outcome,
            "verdicts_match": (inplace.ok == oracle.ok
                               and inplace.outcome == oracle.outcome),
            "unreduced": {
                "states_explored": oracle.states_explored,
                "wall_seconds": oracle.stats.wall_seconds,
                "states_per_second": _rate(
                    oracle.states_explored, oracle.stats.wall_seconds
                ),
            },
            "reduced": {
                "states_explored": inplace.states_explored,
                "wall_seconds": inplace.stats.wall_seconds,
                "states_per_second": _rate(
                    inplace.stats.states_visited,
                    inplace.stats.wall_seconds,
                ),
                "stats": inplace.stats.to_dict(),
            },
            "engines": {
                "inplace": _engine_cell(inplace),
                "clone": _engine_cell(clone),
            },
            "engines_identical": (
                inplace.outcome == clone.outcome
                and inplace.states_explored == clone.states_explored
                and inplace.stats.states_visited
                == clone.stats.states_visited
                and inplace.stats.transitions == clone.stats.transitions
            ),
            "engine_speedup": (
                clone.stats.wall_seconds
                / max(inplace.stats.wall_seconds, 1e-9)
            ),
            "reduction_ratio": (
                oracle.states_explored / max(inplace.states_explored, 1)
            ),
            "dpor": {
                "outcome": dpor.outcome,
                "states_explored": dpor.states_explored,
                "states_visited": dpor.stats.states_visited,
                "transitions": dpor.stats.transitions,
                "wall_seconds": dpor.stats.wall_seconds,
                "races_detected": dpor.stats.races_detected,
                "backtrack_points": dpor.stats.backtrack_points,
                "equivalence_classes": dpor.stats.equivalence_classes,
                "stats": dpor.stats.to_dict(),
            },
            "dpor_verdict_matches": (
                dpor.ok == inplace.ok
                and dpor.outcome == inplace.outcome
                and dpor.truncated == inplace.truncated
            ),
            #: sleep states_visited / dpor states_visited — >1 means
            #: DPOR did less work than the sleep-set backend.
            "dpor_ratio": (
                inplace.stats.states_visited
                / max(dpor.stats.states_visited, 1)
            ),
        })
    return rows


@pytest.fixture(scope="module")
def gate_rows():
    return _measure_rows()


def test_verdict_equivalence_on_gate_set(gate_rows):
    for row in gate_rows:
        assert row["verdicts_match"], row["program"]


def test_reduced_never_explores_more(gate_rows):
    for row in gate_rows:
        assert (row["reduced"]["states_explored"]
                <= row["unreduced"]["states_explored"]), row["program"]


def test_reduction_floor(gate_rows):
    """At least three Table-2 programs clear the ≥5x state-count bar."""
    over = [row["program"] for row in gate_rows
            if row["reduction_ratio"] >= REDUCTION_FLOOR]
    assert len(over) >= MIN_PROGRAMS_OVER_FLOOR, (
        f"only {over} cleared {REDUCTION_FLOOR}x; "
        f"ratios: { {r['program']: round(r['reduction_ratio'], 2) for r in gate_rows} }"
    )


def test_reduced_work_never_regresses(gate_rows):
    """Per-program exploration work stays at or under the PR-6 seed."""
    for row in gate_rows:
        ceiling = SEED_REDUCED_CEILING[row["program"]]
        assert row["reduced"]["states_explored"] <= ceiling, (
            row["program"], row["reduced"]["states_explored"], ceiling
        )


def test_engines_identical_on_gate_set(gate_rows):
    """Clone and in-place runs agree on verdicts AND state counts."""
    for row in gate_rows:
        assert row["engines_identical"], (
            row["program"],
            row["engines"]["inplace"],
            row["engines"]["clone"],
        )


def test_states_per_second_floor(gate_rows):
    """The perf-smoke gate: most reduced runs clear the states/s floor."""
    rates = {row["program"]: row["reduced"]["states_per_second"]
             for row in gate_rows}
    over = [name for name, rate in rates.items()
            if rate >= STATES_PER_SECOND_FLOOR]
    assert len(over) >= MIN_PROGRAMS_OVER_SPS_FLOOR, (
        f"only {over} cleared {STATES_PER_SECOND_FLOOR} states/s; "
        f"rates: { {n: round(r) for n, r in rates.items()} }"
    )


def test_engine_speedup(gate_rows):
    """In-place must beat clone on the corpus median wall clock."""
    speedups = [row["engine_speedup"] for row in gate_rows]
    median = statistics.median(speedups)
    assert median >= ENGINE_SPEEDUP_FLOOR, (
        f"median in-place-vs-clone speedup {median:.2f}x "
        f"< {ENGINE_SPEEDUP_FLOOR}x; per program: "
        f"{ {r['program']: round(r['engine_speedup'], 2) for r in gate_rows} }"
    )


def test_dpor_verdict_identity_on_gate_set(gate_rows):
    """DPOR is only admissible if it never changes a verdict."""
    for row in gate_rows:
        assert row["dpor_verdict_matches"], (
            row["program"], row["dpor"]["outcome"], row["verdict"]
        )


def test_dpor_median_reduction_on_gate_trio(gate_rows):
    """DPOR must beat sleep ≥2x on the median of its gate trio."""
    ratios = {row["program"]: row["dpor_ratio"] for row in gate_rows}
    trio = [ratios[name] for name in DPOR_GATE_PROGRAMS]
    median = statistics.median(trio)
    assert median >= DPOR_MEDIAN_FLOOR, (
        f"median sleep-vs-dpor ratio {median:.2f}x < {DPOR_MEDIAN_FLOOR}x "
        f"on {DPOR_GATE_PROGRAMS}; per program: "
        f"{ {n: round(ratios[n], 2) for n in DPOR_GATE_PROGRAMS} }"
    )


def test_dpor_never_worse_on_conflict_light(gate_rows):
    """Conflict-light programs: DPOR ≤ sleep on states visited."""
    rows = {row["program"]: row for row in gate_rows}
    for name in DPOR_CONFLICT_LIGHT:
        row = rows[name]
        assert (row["dpor"]["states_visited"]
                <= row["engines"]["inplace"]["states_visited"]), (
            name,
            row["dpor"]["states_visited"],
            row["engines"]["inplace"]["states_visited"],
        )


def test_dpor_blowup_bounded_on_cycle_heavy(gate_rows):
    """Convergent spin loops: the structural loss stays bounded."""
    rows = {row["program"]: row for row in gate_rows}
    for name in DPOR_CYCLE_HEAVY:
        row = rows[name]
        sleep_visited = row["engines"]["inplace"]["states_visited"]
        assert (row["dpor"]["states_visited"]
                <= DPOR_BLOWUP_CEILING * max(sleep_visited, 1)), (
            name, row["dpor"]["states_visited"], sleep_visited
        )


def test_bench_mc_json_regenerated(gate_rows, results_dir):
    payload = {
        "model": "wmm",
        "level": "atomig",
        "bounds": BOUNDS,
        "reduction_floor": REDUCTION_FLOOR,
        "min_programs_over_floor": MIN_PROGRAMS_OVER_FLOOR,
        "states_per_second_floor": STATES_PER_SECOND_FLOOR,
        "engine_speedup_floor": ENGINE_SPEEDUP_FLOOR,
        "dpor_gate_programs": list(DPOR_GATE_PROGRAMS),
        "dpor_median_floor": DPOR_MEDIAN_FLOOR,
        "dpor_conflict_light": list(DPOR_CONFLICT_LIGHT),
        "dpor_cycle_heavy": list(DPOR_CYCLE_HEAVY),
        "dpor_blowup_ceiling": DPOR_BLOWUP_CEILING,
        "rows": gate_rows,
        "summary": {
            "programs_over_floor": sorted(
                row["program"] for row in gate_rows
                if row["reduction_ratio"] >= REDUCTION_FLOOR
            ),
            "all_verdicts_match": all(
                row["verdicts_match"] for row in gate_rows
            ),
            "all_engines_identical": all(
                row["engines_identical"] for row in gate_rows
            ),
            "median_engine_speedup": statistics.median(
                row["engine_speedup"] for row in gate_rows
            ),
            "all_dpor_verdicts_match": all(
                row["dpor_verdict_matches"] for row in gate_rows
            ),
            "dpor_gate_median": statistics.median(
                row["dpor_ratio"] for row in gate_rows
                if row["program"] in DPOR_GATE_PROGRAMS
            ),
            "dpor_ratios": {
                row["program"]: round(row["dpor_ratio"], 3)
                for row in gate_rows
            },
        },
    }
    path = os.path.join(results_dir, "BENCH_mc.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.getsize(path) > 0
