"""Exploration-performance gate: the reduction must stay ≥5x on its
headroom programs, verdict-equivalent everywhere, and leave a
``BENCH_mc.json`` trail (states, wall time, states/sec) so the perf
trajectory is tracked from PR 2 onward (EXPERIMENTS.md).

Gate workloads are the Table-2 corpus programs; where the default
model-checking client is fully lock-serialized (one contended address —
a regime where conflict-based partial-order reduction provably has
little headroom), the program's ``gate_source`` client exercises the
same data structure with disjoint-address parallelism, which is where
the reduction must deliver.
"""

import json
import os

import pytest

from repro.api import compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.bench.tables import TABLE2_BENCHMARKS
from repro.core.config import PortingLevel
from repro.mc.explorer import check_module

BOUNDS = dict(max_steps=3000, max_states=1_500_000)
#: Programs that must individually clear the 5x bar (ck_ring's default
#: SPSC client and the disjoint-address gate clients); the acceptance
#: floor is three.
REDUCTION_FLOOR = 5.0
MIN_PROGRAMS_OVER_FLOOR = 3


def _measure_rows():
    rows = []
    for name in TABLE2_BENCHMARKS:
        bench = BENCHMARKS[name]
        builder = bench.gate_source or bench.mc_source
        module = compile_source(builder(), name)
        ported, _report = port_module(module, PortingLevel.ATOMIG)
        oracle = check_module(ported, model="wmm", reduce=False, **BOUNDS)
        reduced = check_module(ported, model="wmm", reduce=True, **BOUNDS)
        rows.append({
            "program": name,
            "client": "gate" if bench.gate_source else "mc",
            "verdict": reduced.outcome,
            "verdicts_match": (reduced.ok == oracle.ok
                               and reduced.outcome == oracle.outcome),
            "unreduced": {
                "states_explored": oracle.states_explored,
                "wall_seconds": oracle.stats.wall_seconds,
                "states_per_second": oracle.stats.states_per_second,
            },
            "reduced": {
                "states_explored": reduced.states_explored,
                "wall_seconds": reduced.stats.wall_seconds,
                "states_per_second": reduced.stats.states_per_second,
                "stats": reduced.stats.to_dict(),
            },
            "reduction_ratio": (
                oracle.states_explored / max(reduced.states_explored, 1)
            ),
        })
    return rows


@pytest.fixture(scope="module")
def gate_rows():
    return _measure_rows()


def test_verdict_equivalence_on_gate_set(gate_rows):
    for row in gate_rows:
        assert row["verdicts_match"], row["program"]


def test_reduced_never_explores_more(gate_rows):
    for row in gate_rows:
        assert (row["reduced"]["states_explored"]
                <= row["unreduced"]["states_explored"]), row["program"]


def test_reduction_floor(gate_rows):
    """At least three Table-2 programs clear the ≥5x state-count bar."""
    over = [row["program"] for row in gate_rows
            if row["reduction_ratio"] >= REDUCTION_FLOOR]
    assert len(over) >= MIN_PROGRAMS_OVER_FLOOR, (
        f"only {over} cleared {REDUCTION_FLOOR}x; "
        f"ratios: { {r['program']: round(r['reduction_ratio'], 2) for r in gate_rows} }"
    )


def test_bench_mc_json_regenerated(gate_rows, results_dir):
    payload = {
        "model": "wmm",
        "level": "atomig",
        "bounds": BOUNDS,
        "reduction_floor": REDUCTION_FLOOR,
        "min_programs_over_floor": MIN_PROGRAMS_OVER_FLOOR,
        "rows": gate_rows,
        "summary": {
            "programs_over_floor": sorted(
                row["program"] for row in gate_rows
                if row["reduction_ratio"] >= REDUCTION_FLOOR
            ),
            "all_verdicts_match": all(
                row["verdicts_match"] for row in gate_rows
            ),
        },
    }
    path = os.path.join(results_dir, "BENCH_mc.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.getsize(path) > 0
