"""Table 4: dynamically executed barriers on the Memcached workload.

The paper's measurement: AtoMig converts a modest slice of dynamic
loads/stores into atomic ones (19.9M of 377M loads, 5.5M of 127M
stores); the original executes no atomics at all.  We assert the same
shape: original runs zero atomic accesses, the AtoMig port converts a
minority fraction of each, and total access counts stay put.
"""

from repro.bench.tables import format_table, table4


def test_table4_dynamic_barriers(benchmark, record_table):
    rows = benchmark.pedantic(table4, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["counter", "original", "atomig"],
        title="Table 4: dynamically executed barriers (Memcached workload)",
    )
    record_table("table4", text)
    by_counter = {row["counter"]: row for row in rows}

    assert by_counter["atomic loads"]["original"] == 0
    assert by_counter["atomic stores"]["original"] == 0
    assert by_counter["atomic loads"]["atomig"] > 0
    assert by_counter["atomic stores"]["atomig"] > 0

    # AtoMig atomizes a minority of the dynamic accesses (paper: ~5%
    # of loads, ~4% of stores on Memcached).
    total_loads = (
        by_counter["non-atomic loads"]["atomig"]
        + by_counter["atomic loads"]["atomig"]
    )
    total_stores = (
        by_counter["non-atomic stores"]["atomig"]
        + by_counter["atomic stores"]["atomig"]
    )
    assert by_counter["atomic loads"]["atomig"] < 0.5 * total_loads
    assert by_counter["atomic stores"]["atomig"] < 0.5 * total_stores
