"""Barrier-weakening gate: the optimizer must pay for itself, safely.

Runs the oracle-guided weakener over the Table 2 corpus (the same
modules whose verification the paper reports) and enforces the ISSUE's
acceptance bar:

- every module keeps its model-checker verdict after ``atomig
  optimize`` (the whole point of the oracle);
- estimated barrier cost (via the shared ``vm.costs`` path) drops on at
  least the spinlock and ring benchmarks — the hot-path shapes Table 5
  shows blanket-SC losing on;
- the oracle stays cheap: batched bisection keeps the number of checks
  well below one-per-ladder-rung.

The measured numbers land in ``BENCH_opt.json`` (barriers before/after,
oracle checks, wall-clock) so the weakening trajectory is tracked from
this PR onward, and ``table9.txt`` is regenerated for EXPERIMENTS.md.
"""

import json
import os
import time

import pytest

from repro.bench import tables as T
from repro.bench.tables import TABLE9_BENCHMARKS, table9

#: Benchmarks whose estimated barrier cost MUST drop (the ISSUE gate).
MUST_IMPROVE = ("ck_spinlock_cas", "ck_ring")

#: Ceiling on oracle checks per module: every candidate walking its
#: whole ladder one check at a time would cost ~3 checks per site;
#: batching + bisection must stay far below that on these modules.
CHECKS_PER_CANDIDATE_CEILING = 2.0


@pytest.fixture(scope="module")
def table9_run():
    """(rows, wall_seconds) of the full Table 9 regeneration."""
    started = time.perf_counter()
    rows = table9()
    return rows, time.perf_counter() - started


def test_every_corpus_module_keeps_its_verdict(table9_run):
    rows, _seconds = table9_run
    assert [row["benchmark"] for row in rows] == list(TABLE9_BENCHMARKS)
    for row in rows:
        assert row["verdict_kept"], (
            f"{row['benchmark']}: optimize changed the verdict "
            f"({row['_report']['baseline_outcome']} -> "
            f"{row['_report']['final_outcome']})"
        )


def test_barrier_cost_drops_on_hot_path_benchmarks(table9_run):
    rows, _seconds = table9_run
    by_name = {row["benchmark"]: row for row in rows}
    for name in MUST_IMPROVE:
        row = by_name[name]
        assert row["cost_opt"] < row["cost_sc"], (
            f"{name}: no barrier-cost win "
            f"({row['cost_sc']} -> {row['cost_opt']})"
        )


def test_no_module_gets_more_expensive(table9_run):
    rows, _seconds = table9_run
    for row in rows:
        assert row["cost_opt"] <= row["cost_sc"], row["benchmark"]


def test_bisection_keeps_oracle_checks_bounded(table9_run):
    rows, _seconds = table9_run
    for row in rows:
        candidates = row["_report"]["candidates"]
        if candidates == 0:
            continue
        ratio = row["checks"] / candidates
        assert ratio <= CHECKS_PER_CANDIDATE_CEILING, (
            f"{row['benchmark']}: {row['checks']} checks for "
            f"{candidates} candidates ({ratio:.2f}/candidate)"
        )


def test_fast_path_answers_some_queries_statically(table9_run):
    """The robustness fast path must carry real weight on Table 9.

    Several corpus modules are statically robust once ported (their
    oracle can certify weakenings without exploring a single state);
    across the whole corpus the hit count must be nonzero and every
    hit must have saved its baseline's exploration.
    """
    rows, _seconds = table9_run
    hits = sum(row["_report"]["robustness_hits"] for row in rows)
    saved = sum(row["_report"]["robustness_states_saved"] for row in rows)
    assert hits > 0, "no oracle query was answered by the fast path"
    assert saved > 0, "fast-path hits saved no exploration"
    for row in rows:
        report = row["_report"]
        if report["robustness_hits"]:
            assert report["baseline_robust"], row["benchmark"]


def test_table9_recorded(table9_run, record_table):
    rows, _seconds = table9_run
    text = T.format_table(
        rows,
        ["benchmark", "cost_sc", "cost_opt", "saved_pct", "weakened",
         "fences_gone", "frozen", "checks", "verdict_kept"],
        title="Table 9: oracle-guided barrier weakening (SC vs optimized)",
    )
    record_table("table9", text)


def test_bench_opt_json_regenerated(table9_run, results_dir):
    rows, seconds = table9_run
    payload = {
        "wall_seconds": seconds,
        "must_improve": list(MUST_IMPROVE),
        "checks_per_candidate_ceiling": CHECKS_PER_CANDIDATE_CEILING,
        "rows": [
            {
                "benchmark": row["benchmark"],
                "barrier_cost_sc": row["cost_sc"],
                "barrier_cost_optimized": row["cost_opt"],
                "saved_pct": row["saved_pct"],
                "accesses_weakened": row["weakened"],
                "fences_deleted": row["fences_gone"],
                "frozen_sites": row["frozen"],
                "candidates": row["_report"]["candidates"],
                "oracle_checks": row["checks"],
                "oracle_cache_hits": row["_report"]["cache_hits"],
                "oracle_robustness_checks":
                    row["_report"]["robustness_checks"],
                "oracle_robustness_hits": row["_report"]["robustness_hits"],
                "robustness_states_saved":
                    row["_report"]["robustness_states_saved"],
                "baseline_robust": row["_report"]["baseline_robust"],
                "oracle_states": row["_report"]["oracle_states"],
                "rounds": row["_report"]["rounds"],
                "verdict": row["_report"]["baseline_outcome"],
                "verdict_preserved": row["verdict_kept"],
                "wall_seconds": row["_report"]["wall_seconds"],
            }
            for row in rows
        ],
    }
    path = os.path.join(results_dir, "BENCH_opt.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.getsize(path) > 0
