"""Table 3: AtoMig statistics for large applications.

Regenerates the paper's scalability table on density-matched synthetic
code bases (1/25 scale; see DESIGN.md for the substitution — the
pipeline-throughput work of PR 4 pays for running a 4x larger corpus
than the original 1/100 harness inside the same CI budget).  The
asserted *shape* claims:

- detected spinloop/optiloop counts track the scaled paper profile;
- AtoMig'ing a project costs a small constant factor over building it
  (the paper measures 2-3x; our port pass is cheaper than a full
  re-optimization, so we accept 1.1-4x);
- AtoMig adds far fewer implicit barriers than the Naive strategy.
"""

import pytest

from repro.bench.synth import PAPER_TABLE3
from repro.bench.tables import format_table, table3

SCALE = 25


@pytest.fixture(scope="module")
def rows():
    return table3(scale=SCALE)


def test_table3_scalability(benchmark, record_table):
    # Serial and with the frontend cache forced off: the build_ratio
    # shape claim is about real frontend cost, not cache hits.
    measured = benchmark.pedantic(
        table3, kwargs={"scale": SCALE, "frontend_cache": False},
        rounds=1, iterations=1,
    )
    text = format_table(
        measured,
        ["application", "sloc", "spinloops", "optiloops", "build_seconds",
         "atomig_seconds", "build_ratio", "orig_explicit", "orig_implicit",
         "atomig_explicit", "atomig_implicit", "naive_implicit"],
        title=f"Table 3: AtoMig statistics (synthetic, 1/{SCALE} scale)",
    )
    record_table("table3", text)

    for row in measured:
        paper = PAPER_TABLE3[row["application"]]
        scaled_spin = max(paper.spinloops // SCALE, 1)
        # Detection should find at least the seeded loops; a small
        # overshoot (helpers re-detected after inlining) is fine.
        assert row["spinloops"] >= scaled_spin
        assert row["spinloops"] <= 3 * scaled_spin + 10
        assert row["optiloops"] >= max(paper.optiloops // SCALE, 1)
        # Porting costs a small factor over the build, as in the paper
        # (2-3x there; generous upper bound for noisy CI machines).
        assert 1.0 < row["build_ratio"] < 8.0
        # AtoMig adds implicit barriers, but far fewer than Naive.
        assert row["atomig_implicit"] > row["orig_implicit"]
        assert row["naive_implicit"] > 2 * row["atomig_implicit"]
        # Optimistic loops are what introduce new explicit barriers.
        assert row["atomig_explicit"] >= row["orig_explicit"]
