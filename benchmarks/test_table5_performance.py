"""Table 5: performance impact of Naive vs AtoMig porting.

Regenerates the paper's normalized-slowdown table on the VM cost model.
Absolute factors depend on the modeled hardware (see EXPERIMENTS.md for
paper-vs-measured); the asserted shape claims are the paper's:

- AtoMig stays within a few percent of the original on the large
  applications while Naive is consistently slower;
- on every benchmark AtoMig is at least as fast as Naive;
- AtoMig beats the expert explicit-barrier ports on some CK benchmarks
  (the paper's "porting should be left to machines" observation).
"""

import pytest

from repro.bench.tables import TABLE5_BENCHMARKS, format_table, table5

APPS = ("mariadb", "postgresql", "leveldb", "memcached", "sqlite")


@pytest.fixture(scope="module")
def rows():
    return table5()


def test_table5_performance(benchmark, record_table):
    rows = benchmark.pedantic(table5, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["benchmark", "naive", "atomig", "paper_naive", "paper_atomig"],
        title="Table 5: Naive and AtoMig slowdowns vs original",
    )
    record_table("table5", text)
    by_name = {row["benchmark"]: row for row in rows}

    for app in APPS:
        row = by_name[app]
        # AtoMig: low overhead on the big applications (paper: 0-4%).
        assert row["atomig"] < 1.15, f"{app}: atomig {row['atomig']:.2f}"
        # Naive costs at least as much as AtoMig everywhere.
        assert row["naive"] >= row["atomig"] - 0.03

    for name in TABLE5_BENCHMARKS:
        row = by_name[name]
        assert row["atomig"] <= row["naive"] + 0.05, (
            f"{name}: atomig {row['atomig']:.2f} > naive {row['naive']:.2f}"
        )

    # The paper's headline observation on CK: the AtoMig port (implicit
    # barriers) beats the expert explicit-barrier port on some
    # structures (ck_ring / ck_spinlock_mcs in our runs).
    assert any(
        by_name[name]["atomig"] < 1.0
        for name in ("ck_ring", "ck_spinlock_cas", "ck_spinlock_mcs")
    )

    # Average AtoMig overhead across the five applications is small
    # (paper: 1.8%).
    mean_app = sum(by_name[a]["atomig"] for a in APPS) / len(APPS)
    assert mean_app < 1.10
