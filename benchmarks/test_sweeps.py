"""Parameter sweeps: where the porting strategies' costs come from.

Two series that localize the overheads the paper reports:

1. **Critical-section payload sweep** (ck_spinlock_cas): Naive's
   slowdown grows with the amount of data touched per critical section
   (every access pays an implicit barrier), while AtoMig's overhead is
   a constant per-section cost (lock accesses only) that *amortizes*
   toward 1.0 — the mechanism behind Table 5's application numbers.
2. **Reader-validation sweep** (seqlock width): AtoMig's explicit
   fences are a fixed per-validation cost.  Against the raw TSO
   baseline they dominate at tiny widths (AtoMig can even exceed Naive
   there — the price of correctness for optimistic patterns, cf. the
   paper's CLHT-lf 1.40x) and amortize away as the protected payload
   grows, dropping below Naive.
"""

from repro.api import compile_source, port_module
from repro.bench.programs import ck_sequence, ck_spinlock_cas
from repro.bench.tables import _mean_cycles
from repro.core.config import PortingLevel

PAYLOADS = (2, 8, 32, 56)
WIDTHS = (2, 8, 24)


def _ratios(source_builder, **kwargs):
    module = compile_source(source_builder(**kwargs), "sweep")
    base = _mean_cycles(module, seeds=(0, 1))
    out = {}
    for level in (PortingLevel.NAIVE, PortingLevel.ATOMIG):
        ported, _ = port_module(module, level)
        out[level.value] = _mean_cycles(ported, seeds=(0, 1)) / base
    return out


def test_payload_sweep_spinlock(benchmark, record_table):
    def run():
        return [
            (payload,
             _ratios(ck_spinlock_cas.perf_source, rounds=60,
                     payload=payload))
            for payload in PAYLOADS
        ]

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Sweep: ck_spinlock_cas critical-section payload",
             f"{'payload':>8} {'naive':>7} {'atomig':>7}"]
    for payload, ratios in series:
        lines.append(
            f"{payload:>8} {ratios['naive']:>7.2f} {ratios['atomig']:>7.2f}"
        )
    record_table("sweep_payload", "\n".join(lines))

    # Naive must cost at least as much as AtoMig at every point.
    for _payload, ratios in series:
        assert ratios["naive"] >= ratios["atomig"] - 0.05
    # AtoMig's *relative* overhead shrinks as real work grows.
    first = series[0][1]["atomig"]
    last = series[-1][1]["atomig"]
    assert last <= first + 0.05
    # Naive's stays materially above AtoMig's at the largest payload.
    assert series[-1][1]["naive"] > series[-1][1]["atomig"]


def test_width_sweep_seqlock(benchmark, record_table):
    def run():
        return [
            (width,
             _ratios(ck_sequence.perf_source, rounds=120, width=width))
            for width in WIDTHS
        ]

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Sweep: ck_sequence payload width",
             f"{'width':>6} {'naive':>7} {'atomig':>7}"]
    for width, ratios in series:
        lines.append(
            f"{width:>6} {ratios['naive']:>7.2f} {ratios['atomig']:>7.2f}"
        )
    record_table("sweep_width", "\n".join(lines))

    # AtoMig's fence cost amortizes: strictly decreasing in width ...
    atomig_curve = [ratios["atomig"] for _w, ratios in series]
    assert atomig_curve == sorted(atomig_curve, reverse=True)
    # ... and at realistic widths it undercuts Naive.
    assert series[-1][1]["atomig"] < series[-1][1]["naive"]
