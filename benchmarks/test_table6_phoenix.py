"""Table 6: Phoenix suite — Naive vs Lasagne vs AtoMig.

The paper's claims, asserted on the measured ratios:

- AtoMig's pattern-based strategy is essentially free on these
  join-synchronized map-reduce kernels (geomean ~1.01);
- the Naive strategy costs real overhead (geomean 1.39);
- remarkably, Lasagne is *slower than Naive* on average, because its
  explicit fences are costlier than the implicit barriers Naive uses.
"""

from repro.bench.tables import format_table, table6


def test_table6_phoenix(benchmark, record_table):
    rows = benchmark.pedantic(table6, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["benchmark", "naive", "lasagne", "atomig",
         "paper_naive", "paper_lasagne", "paper_atomig"],
        title="Table 6: Phoenix benchmark (normalized slowdowns)",
    )
    record_table("table6", text)
    by_name = {row["benchmark"]: row for row in rows}

    geomean = by_name["geometric mean"]
    # AtoMig is essentially free on these kernels.
    assert geomean["atomig"] < 1.05
    # Naive has measurable overhead.
    assert geomean["naive"] > 1.15
    # Lasagne is slower than Naive on average (the paper's key finding).
    assert geomean["lasagne"] > geomean["naive"]

    for row in rows:
        assert row["atomig"] <= row["naive"] + 0.03
        assert row["atomig"] <= row["lasagne"]

    # histogram is the most store-intensive kernel and suffers most
    # under Naive, as in the paper (2.80 vs suite geomean 1.39).
    assert by_name["histogram"]["naive"] == max(
        row["naive"] for row in rows if row["benchmark"] != "geometric mean"
    )
