"""Extended verification matrix beyond the paper's Table 2.

Classic algorithms with well-known memory-model sensitivities, checked
through the same Original/AtoMig pipeline — including the paper's §1
motivating scenario (a DPDK-style ring silently broken by an Arm
recompile) and a case that is broken *even on TSO* (fence-less
Peterson), which porting alone cannot and should not "fix".

The 15 checks run through the parallel harness; ``ATOMIG_JOBS=N`` in
the environment fans them across N worker processes (CI and local runs
default to sequential, which is bit-identical).
"""

import os

from repro.bench.programs import classic_locks
from repro.mc.parallel import CheckTask, run_tasks


CASES = {
    # name: (source builder, tso_ok, wmm_ok, atomig_wmm_ok)
    "peterson(+mfence)": (classic_locks.peterson_tso_source,
                          True, False, True),
    # Fence-less Peterson is broken even on x86 — and AtoMig *still*
    # repairs it: the spinloop marks interested0/1 and turn, and SC
    # atomics restore the store-load order TSO itself lacks.  Porting
    # to SC is strictly stronger than restoring TSO.
    "peterson(no fence)": (classic_locks.peterson_broken_source,
                           False, False, True),
    "dekker_core": (classic_locks.dekker_core_source, True, True, True),
    "treiber_stack": (classic_locks.treiber_stack_mc_source,
                      True, False, True),
    "dpdk_ring": (classic_locks.dpdk_ring_mc_source, True, False, True),
}

#: Each case expands into (model, porting level) checks in this order.
_MATRIX = (("tso", None), ("wmm", None), ("wmm", "atomig"))


def test_extended_verification(benchmark, record_table):
    jobs = int(os.environ.get("ATOMIG_JOBS", "0")) or None

    def run():
        tasks = [
            CheckTask(name=name, source=builder(), model=model, level=level,
                      max_steps=1500)
            for name, (builder, *_expected) in CASES.items()
            for model, level in _MATRIX
        ]
        results = iter(run_tasks(tasks, jobs=jobs))
        return [
            (name, next(results), next(results), next(results),
             tso_ok, wmm_ok, fixed_ok)
            for name, (_builder, tso_ok, wmm_ok, fixed_ok) in CASES.items()
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Extended verification (beyond Table 2)",
             f"{'benchmark':22s} {'tso':>5} {'wmm':>5} {'atomig/wmm':>11}"]
    for name, tso, wmm, fixed, *_ in rows:
        lines.append(
            f"{name:22s} {'ok' if tso.ok else 'bug':>5} "
            f"{'ok' if wmm.ok else 'bug':>5} "
            f"{'ok' if fixed.ok else 'bug':>11}"
        )
    record_table("extended_verification", "\n".join(lines))

    for name, tso, wmm, fixed, tso_ok, wmm_ok, fixed_ok in rows:
        assert tso.ok == tso_ok, f"{name}: tso"
        assert wmm.ok == wmm_ok, f"{name}: wmm"
        assert fixed.ok == fixed_ok, f"{name}: atomig"
