"""Extended verification matrix beyond the paper's Table 2.

Classic algorithms with well-known memory-model sensitivities, checked
through the same Original/AtoMig pipeline — including the paper's §1
motivating scenario (a DPDK-style ring silently broken by an Arm
recompile) and a case that is broken *even on TSO* (fence-less
Peterson), which porting alone cannot and should not "fix".
"""

from repro.api import check_module, compile_source, port_module
from repro.bench.programs import classic_locks
from repro.core.config import PortingLevel


CASES = {
    # name: (source builder, tso_ok, wmm_ok, atomig_wmm_ok)
    "peterson(+mfence)": (classic_locks.peterson_tso_source,
                          True, False, True),
    # Fence-less Peterson is broken even on x86 — and AtoMig *still*
    # repairs it: the spinloop marks interested0/1 and turn, and SC
    # atomics restore the store-load order TSO itself lacks.  Porting
    # to SC is strictly stronger than restoring TSO.
    "peterson(no fence)": (classic_locks.peterson_broken_source,
                           False, False, True),
    "dekker_core": (classic_locks.dekker_core_source, True, True, True),
    "treiber_stack": (classic_locks.treiber_stack_mc_source,
                      True, False, True),
    "dpdk_ring": (classic_locks.dpdk_ring_mc_source, True, False, True),
}


def test_extended_verification(benchmark, record_table):
    def run():
        rows = []
        for name, (builder, tso_ok, wmm_ok, fixed_ok) in CASES.items():
            module = compile_source(builder(), name)
            tso = check_module(module, model="tso", max_steps=1500)
            wmm = check_module(module, model="wmm", max_steps=1500)
            ported, _ = port_module(module, PortingLevel.ATOMIG)
            fixed = check_module(ported, model="wmm", max_steps=1500)
            rows.append((name, tso, wmm, fixed, tso_ok, wmm_ok, fixed_ok))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Extended verification (beyond Table 2)",
             f"{'benchmark':22s} {'tso':>5} {'wmm':>5} {'atomig/wmm':>11}"]
    for name, tso, wmm, fixed, *_ in rows:
        lines.append(
            f"{name:22s} {'ok' if tso.ok else 'bug':>5} "
            f"{'ok' if wmm.ok else 'bug':>5} "
            f"{'ok' if fixed.ok else 'bug':>11}"
        )
    record_table("extended_verification", "\n".join(lines))

    for name, tso, wmm, fixed, tso_ok, wmm_ok, fixed_ok in rows:
        assert tso.ok == tso_ok, f"{name}: tso"
        assert wmm.ok == wmm_ok, f"{name}: wmm"
        assert fixed.ok == fixed_ok, f"{name}: atomig"
