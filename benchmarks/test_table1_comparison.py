"""Table 1: qualitative comparison of porting approaches.

This table is the paper's design-space argument; it is static data, but
the harness regenerates and checks the two rows our system directly
substantiates (Naive and AtoMig) against measured behaviour.
"""

from repro.bench.tables import format_table, table1


def test_table1_comparison(benchmark, record_table):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["approach", "safe", "efficient", "scalable", "practical"],
        title="Table 1: Comparison of Porting Approaches",
    )
    record_table("table1", text)
    by_name = {row["approach"]: row for row in rows}
    # The two claims the rest of the suite substantiates empirically:
    assert by_name["Naive"]["efficient"] == "no"
    assert by_name["AtoMig"]["scalable"] == "yes"
    assert by_name["AtoMig"]["efficient"] == "yes"
