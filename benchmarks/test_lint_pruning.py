"""Lint pruning: fewer barriers on the legacy lock benchmarks, still safe.

The legacy variants of ck_spinlock_cas and CLHT-lb declare their
critical-section data ``volatile`` (as the real CK and CLHT sources
do), so AtoMig's annotation pass atomizes accesses that the per-bucket
or TAS lock already protects.  With ``prune_protected`` the lockset
analysis proves the protection and exempts those accesses; this suite
asserts the implicit-barrier count strictly drops while the pruned
module still verifies under WMM.

It also re-lints the whole corpus against the committed snapshot
(``benchmarks/results/lint_corpus.txt``) so classification changes show
up as a diff in CI rather than silently.
"""

import io
import os
from contextlib import redirect_stdout

from repro.bench.tables import LINT_BENCHMARKS, format_table, table_lint

SNAPSHOT = os.path.join(
    os.path.dirname(__file__), "results", "lint_corpus.txt"
)


def test_lint_pruning_reduces_barriers(benchmark, record_table):
    rows = benchmark.pedantic(table_lint, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["benchmark", "atomig_impl", "pruned_impl", "pruned", "wmm_ok"],
        title="Table 7: lock-protection pruning (atomig lint)",
    )
    record_table("table_lint", text)
    assert {row["benchmark"] for row in rows} == set(LINT_BENCHMARKS)
    for row in rows:
        assert row["pruned"] > 0, (
            f"{row['benchmark']}: nothing pruned"
        )
        assert row["pruned_impl"] < row["atomig_impl"], (
            f"{row['benchmark']}: pruning did not reduce implicit barriers"
        )
        assert row["wmm_ok"], (
            f"{row['benchmark']}: pruned module fails under WMM"
        )


def test_lint_json_carries_schema_version(tmp_path):
    """Downstream consumers key on schema_version to parse lint JSON."""
    import json

    from repro.bench.corpus import get_benchmark
    from repro.cli import main
    from repro.core.report import LINT_SCHEMA_VERSION

    path = tmp_path / "mp.c"
    path.write_text(get_benchmark("message_passing").mc_source())
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(["lint", str(path), "--json"]) == 0
    payload = json.loads(buffer.getvalue())
    assert payload["schema_version"] == LINT_SCHEMA_VERSION


def test_lint_corpus_matches_snapshot():
    from repro.cli import main

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        exit_code = main(["lint", "--corpus"])
    assert exit_code == 0
    current = buffer.getvalue()
    with open(SNAPSHOT) as handle:
        expected = handle.read()
    assert current == expected, (
        "lint classifications changed; review and regenerate the snapshot "
        "with: PYTHONPATH=src python -m repro lint --corpus "
        "> benchmarks/results/lint_corpus.txt"
    )
