"""Static fence-repair gate: synthesized covers must be sound and cheap.

Three jobs, mirroring the robustness and weakening gates:

- **Corpus soundness**: every corpus benchmark (including the perf-only
  phoenix kernels) must re-synthesize to a statically robust module
  whose verification then costs *zero* explored states
  (``verdict_source == "robustness"``), and the synthesized barrier
  cost must never exceed the robust blanket-SC completion — for both
  architecture cost models.
- **A/B verdict preservation**: for the Table 2 corpus, the repaired
  module's full WMM exploration must reach the same verdict as the
  original program under SC — repair may only add order, never change
  what the program computes.
- **Artifacts**: regenerates ``table10.txt`` (repair vs oracle
  weakening per architecture), ``BENCH_repair.json`` and the
  ``repair_corpus.txt`` CI snapshot (same format as ``atomig repair
  --corpus``).
"""

import json
import os
import time

import pytest

from repro.analysis.repair import resynthesize_ported
from repro.api import check_module, compile_source, port_module
from repro.bench import tables as T
from repro.bench.corpus import BENCHMARKS
from repro.bench.tables import TABLE2_BENCHMARKS, table10
from repro.core.config import PortingLevel

#: Checker bounds matching the Table 2 harness.
MAX_STEPS = 600

ARCHES = ("armv8", "power")


def _corpus_sources():
    """name -> source() for every benchmark with any source at all."""
    out = {}
    for name in sorted(BENCHMARKS):
        benchmark = BENCHMARKS[name]
        source = benchmark.mc_source or benchmark.perf_source
        if source is not None:
            out[name] = source
    return out


@pytest.fixture(scope="module")
def resynthesized_corpus():
    """name -> {arch: (repaired_module, RepairReport)} for the corpus."""
    out = {}
    for name, source in _corpus_sources().items():
        module = compile_source(source(), name)
        ported, _report = port_module(module, PortingLevel.ATOMIG)
        out[name] = {
            arch: resynthesize_ported(ported, model="wmm", arch=arch)
            for arch in ARCHES
        }
    return out


@pytest.fixture(scope="module")
def table10_run():
    """(rows, wall_seconds) of the full Table 10 regeneration."""
    started = time.perf_counter()
    rows = table10()
    return rows, time.perf_counter() - started


# -- corpus soundness -----------------------------------------------------


def test_every_corpus_module_repairs_to_robust(resynthesized_corpus):
    for name, by_arch in sorted(resynthesized_corpus.items()):
        for arch, (_module, report) in by_arch.items():
            assert report.robust_after, (name, arch)


def test_repaired_modules_verify_with_zero_states(resynthesized_corpus):
    """A successful repair makes verification free: the robustness
    fast path answers the WMM check without exploring a state."""
    for name, by_arch in sorted(resynthesized_corpus.items()):
        module, _report = by_arch["armv8"]
        result = check_module(module, model="wmm", max_steps=MAX_STEPS,
                              robustness=True)
        assert result.ok, name
        assert result.verdict_source == "robustness", name
        assert result.states_explored == 0, name


def test_repair_cost_never_exceeds_blanket_sc(resynthesized_corpus):
    """The incumbent fallback guarantees cost_repair <= cost_sc on
    every module, under both architecture cost models."""
    for name, by_arch in sorted(resynthesized_corpus.items()):
        for arch, (_module, report) in by_arch.items():
            sc_cost = report.incumbent.get("barriers", 0)
            assert report.barrier_cost_after <= sc_cost, (
                f"{name}/{arch}: repair {report.barrier_cost_after} > "
                f"blanket-SC completion {sc_cost}"
            )


def test_ab_verdicts_preserved_on_table2(resynthesized_corpus):
    """Repair adds order, never behavior: the repaired module's full
    WMM exploration agrees with the original program under SC."""
    for name in TABLE2_BENCHMARKS:
        original = compile_source(BENCHMARKS[name].mc_source(), name)
        baseline = check_module(original, model="sc", max_steps=MAX_STEPS,
                                robustness=False)
        repaired, _report = resynthesized_corpus[name]["armv8"]
        after = check_module(repaired, model="wmm", max_steps=MAX_STEPS,
                             robustness=False)
        assert after.outcome == baseline.outcome, (
            f"{name}: sc={baseline.outcome} wmm-repaired={after.outcome}"
        )


# -- Table 10: repair vs oracle weakening ---------------------------------


def test_table10_covers_both_arches(table10_run):
    rows, _seconds = table10_run
    assert rows, "table10 produced no rows"
    assert {row["arch"] for row in rows} == set(ARCHES)
    for row in rows:
        assert row["robust_after"], (row["benchmark"], row["arch"])
        assert row["verdict_kept"], (row["benchmark"], row["arch"])


def test_table10_repair_beats_blanket_sc(table10_run):
    rows, _seconds = table10_run
    for row in rows:
        assert row["cost_repair"] <= row["cost_sc"], (
            f"{row['benchmark']}/{row['arch']}: "
            f"repair {row['cost_repair']} > SC {row['cost_sc']}"
        )


def test_table10_recorded(table10_run, record_table):
    rows, _seconds = table10_run
    text = T.format_table(
        rows,
        ["benchmark", "arch", "cost_sc", "cost_repair", "cost_opt",
         "strengthened", "fences", "solver", "robust_after",
         "verdict_kept"],
        title="Table 10: static repair vs oracle weakening, "
              "per architecture",
    )
    record_table("table10", text)


def test_bench_repair_json_regenerated(table10_run, results_dir):
    rows, seconds = table10_run
    payload = {
        "wall_seconds": seconds,
        "arches": list(ARCHES),
        "rows": [
            {
                "benchmark": row["benchmark"],
                "arch": row["arch"],
                "barrier_cost_sc": row["cost_sc"],
                "barrier_cost_repair": row["cost_repair"],
                "barrier_cost_optimized": row["cost_opt"],
                "strengthened": row["strengthened"],
                "fences_added": row["fences"],
                "solver": row["solver"],
                "robust_after": row["robust_after"],
                "verdict_preserved": row["verdict_kept"],
                "verify": row["_repair"]["verify"],
                "repair_rounds": len(row["_repair"]["rounds"]),
                "repair_notes": row["_repair"]["notes"],
                "repair_wall_seconds": row["_repair"]["wall_seconds"],
            }
            for row in rows
        ],
    }
    path = os.path.join(results_dir, "BENCH_repair.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.getsize(path) > 0


# -- CI snapshot ----------------------------------------------------------


def _corpus_snapshot_lines(resynthesized_corpus, model="wmm"):
    """Mirror of ``atomig repair --corpus`` (must match exactly)."""
    lines = []
    for name in sorted(resynthesized_corpus):
        _module, report = resynthesized_corpus[name]["armv8"]
        fallback = any("fell back" in note for note in report.notes)
        lines.append(
            f"{name:28s} [{model}/{report.arch}]"
            f" sc={report.incumbent.get('barriers', 0)}"
            f" repair={report.barrier_cost_after}"
            f" strengthened={report.strengthened}"
            f" fences={report.fences_added}"
            f" solver={report.solver}"
            + (" fallback" if fallback else "")
            + ("" if report.robust_after else " NON-ROBUST")
        )
    return lines


def test_repair_corpus_snapshot_regenerated(resynthesized_corpus,
                                            results_dir):
    lines = _corpus_snapshot_lines(resynthesized_corpus)
    assert lines, "corpus produced no repairs"
    assert not any(line.endswith("NON-ROBUST") for line in lines)
    path = os.path.join(results_dir, "repair_corpus.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    assert os.path.getsize(path) > 0
