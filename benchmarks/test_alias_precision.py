"""Alias-precision gate: points_to must shrink over-atomization without
ever breaking a WMM verdict.

Three properties are enforced over the Table 8 corpus (Table 2 programs
plus the ``alias``-tagged variants):

- **Reduction**: on at least three programs points_to emits strictly
  fewer implicit barriers than type_based, and every points_to port
  still verifies under WMM — the pruning is provably safe, not lucky.
- **Invariance**: on the Table 2 programs the two modes are barrier-
  identical (pts keys only fill keyless accesses, never split groups).
- **Gap**: on ``message_passing_indirect`` type_based *misses* a
  required barrier (WMM violation) and points_to restores it — the
  pointer-argument detection gap the analysis exists to close.

Results land in ``benchmarks/results/BENCH_alias.json`` for trend
tracking (EXPERIMENTS.md T8).
"""

import json
import os

import pytest

from repro.bench.tables import (
    ALIAS_BENCHMARKS,
    TABLE2_BENCHMARKS,
    TABLE8_BENCHMARKS,
    table8,
)

BOUNDS = dict(max_steps=2500, max_states=400_000)
#: Acceptance floor: strictly fewer implicit barriers on ≥3 programs.
MIN_PROGRAMS_REDUCED = 3
#: The gap demo: type_based under-atomizes here, so its WMM check fails
#: by design and the mode comparison must exempt it.
GAP_BENCHMARK = "message_passing_indirect"


@pytest.fixture(scope="module")
def gate_rows():
    return table8(jobs=os.cpu_count(), **BOUNDS)


def by_name(rows):
    return {row["benchmark"]: row for row in rows}


def test_covers_full_table8_corpus(gate_rows):
    assert {r["benchmark"] for r in gate_rows} == set(TABLE8_BENCHMARKS)


def test_points_to_always_verifies_under_wmm(gate_rows):
    for row in gate_rows:
        assert row["pt_wmm_ok"], (
            f"{row['benchmark']}: points_to port fails under WMM"
        )


def test_points_to_reduces_barriers_on_three_programs(gate_rows):
    reduced = [
        row["benchmark"] for row in gate_rows
        if row["benchmark"] != GAP_BENCHMARK
        and row["points_to_impl"] < row["type_based_impl"]
    ]
    assert len(reduced) >= MIN_PROGRAMS_REDUCED, (
        f"only {reduced} show a reduction; deltas: "
        f"{ {r['benchmark']: r['delta'] for r in gate_rows} }"
    )


def test_points_to_never_exceeds_type_based_except_gap(gate_rows):
    # Outside the gap demo, points_to may only remove barriers.  The
    # gap demo adds one, on purpose: the barrier type_based missed.
    for row in gate_rows:
        if row["benchmark"] == GAP_BENCHMARK:
            continue
        assert row["points_to_impl"] <= row["type_based_impl"], (
            f"{row['benchmark']}: points_to grew the barrier count"
        )


def test_table2_barriers_invariant_across_modes(gate_rows):
    rows = by_name(gate_rows)
    for name in TABLE2_BENCHMARKS:
        row = rows[name]
        assert row["delta"] == 0, f"{name}: modes disagree"
        assert row["pruned_local"] == 0, f"{name}: spurious pruning"
        assert row["tb_wmm_ok"] and row["pt_wmm_ok"], name


def test_gap_benchmark_fixed_by_points_to(gate_rows):
    row = by_name(gate_rows)[GAP_BENCHMARK]
    assert not row["tb_wmm_ok"], (
        "type_based unexpectedly verifies the pointer-argument gap demo; "
        "the benchmark no longer demonstrates the gap"
    )
    assert row["pt_wmm_ok"]
    assert row["points_to_impl"] > row["type_based_impl"]
    assert row["pts_keyed"] > 0


def test_alias_variants_prune_thread_local_accesses(gate_rows):
    rows = by_name(gate_rows)
    pruning = [n for n in ALIAS_BENCHMARKS
               if n != GAP_BENCHMARK and rows[n]["pruned_local"] > 0]
    assert len(pruning) >= MIN_PROGRAMS_REDUCED, (
        f"only {pruning} pruned thread-local accesses"
    )


def test_bench_alias_json_regenerated(gate_rows, results_dir):
    payload = {
        "model": "wmm",
        "level": "atomig",
        "bounds": BOUNDS,
        "min_programs_reduced": MIN_PROGRAMS_REDUCED,
        "gap_benchmark": GAP_BENCHMARK,
        "rows": gate_rows,
        "summary": {
            "programs_reduced": sorted(
                row["benchmark"] for row in gate_rows
                if row["points_to_impl"] < row["type_based_impl"]
            ),
            "all_points_to_wmm_ok": all(r["pt_wmm_ok"] for r in gate_rows),
            "table2_invariant": all(
                row["delta"] == 0 for row in gate_rows
                if row["benchmark"] in TABLE2_BENCHMARKS
            ),
        },
    }
    path = os.path.join(results_dir, "BENCH_alias.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.getsize(path) > 0
