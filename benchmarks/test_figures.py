"""Regenerates the behaviour of every code figure in the paper.

Figures 1 and 3-7 are code examples; each bench reproduces the claim the
figure makes (which patterns are detected, which bugs appear under WMM,
and what the transformation inserts) and prints a per-figure verdict.
Figure 2 (the workflow diagram) is exercised end-to-end by every other
benchmark in this directory.
"""

from repro.api import check_module, compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.core.config import PortingLevel
from repro.core.spinloops import detect_spinloops
from repro.ir import instructions as ins


def _wmm(module):
    return check_module(module, model="wmm", max_steps=600)


def test_figure1_message_passing(benchmark, record_table):
    """Figure 1: MP asserts can fail on WMM, never on TSO."""
    module = compile_source(BENCHMARKS["message_passing"].mc_source(), "mp")

    def run():
        return (
            check_module(module, model="tso", max_steps=600),
            check_module(module, model="wmm", max_steps=600),
        )

    tso, wmm = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "figure1",
        "Figure 1: message passing\n"
        f"TSO: {'ok' if tso.ok else 'VIOLATION'}   "
        f"WMM: {'ok' if wmm.ok else 'VIOLATION'}",
    )
    assert tso.ok and not wmm.ok


def test_figure3_spinloop_taxonomy(benchmark, record_table):
    """Figure 3: three spinloops detected, two non-spinloops rejected."""
    source = """
int flag = 0;
int turns = 7;
enum { DONE = 1, READY = 1, F_MASK = 255 };

void spinloop1() {
    while (flag != DONE) { }
}

void spinloop2() {
    int l_flag;
    do {
        l_flag = DONE;
    } while (l_flag != flag);
}

void spinloop3() {
    int l_flag;
    do {
        l_flag = flag & F_MASK;
    } while (l_flag != READY);
}

void non_spinloop1() {
    for (int i = 0; i < 100; i++) {
        if (flag == DONE) { break; }
    }
}

void non_spinloop2() {
    for (int i = 0; i < turns; i++) { }
}

int main() { return 0; }
"""
    module = compile_source(source, "fig3")

    def run():
        return detect_spinloops(module)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    detected = sorted({info.function_name for info in result.spinloops})
    record_table(
        "figure3",
        "Figure 3: spinloop taxonomy\ndetected in: " + ", ".join(detected),
    )
    assert detected == ["spinloop1", "spinloop2", "spinloop3"]


def test_figure4_tas_lock(benchmark, record_table):
    """Figure 4: the release store is atomized via sticky buddies."""
    module = compile_source(BENCHMARKS["ck_spinlock_cas"].mc_source(), "fig4")

    def run():
        ported, report = port_module(module, PortingLevel.ATOMIG)
        return ported, report, _wmm(module), _wmm(ported)

    ported, report, original_check, ported_check = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    unlock_stores = [
        instr for instr in ported.functions["unlock"].instructions()
        if isinstance(instr, ins.Store)
        and getattr(instr.pointer, "name", "") == "lock_word"
    ]
    record_table(
        "figure4",
        "Figure 4: test-and-set lock\n"
        f"original WMM: {'ok' if original_check.ok else 'VIOLATION'}\n"
        f"AtoMig   WMM: {'ok' if ported_check.ok else 'VIOLATION'}\n"
        f"unlock store order: {unlock_stores[0].order.name}",
    )
    assert not original_check.ok
    assert ported_check.ok
    assert unlock_stores[0].order.name == "SEQ_CST"
    assert "sticky" in unlock_stores[0].marks


def test_figure5_mp_spinloop_controls(benchmark, record_table):
    """Figure 5: both sides of the flag become SC, msg stays plain."""
    module = compile_source(BENCHMARKS["message_passing"].mc_source(), "fig5")

    def run():
        return port_module(module, PortingLevel.ATOMIG)

    ported, report = benchmark.pedantic(run, rounds=1, iterations=1)
    flag_accesses = []
    msg_accesses = []
    for instr in ported.instructions():
        if isinstance(instr, (ins.Load, ins.Store)):
            name = getattr(instr.pointer, "name", "")
            if name == "flag":
                flag_accesses.append(instr)
            elif name == "msg":
                msg_accesses.append(instr)
    record_table(
        "figure5",
        "Figure 5: message passing via spinloop\n"
        f"flag accesses atomized: {len(flag_accesses)}\n"
        f"msg accesses left plain: {len(msg_accesses)}",
    )
    assert flag_accesses and all(
        instr.order.name == "SEQ_CST" for instr in flag_accesses
    )
    assert msg_accesses and all(
        not instr.order.is_atomic for instr in msg_accesses
    )


def test_figure6_seqlock_fences(benchmark, record_table):
    """Figure 6: optimistic controls bring explicit fences, and only
    the full pipeline verifies."""
    module = compile_source(BENCHMARKS["ck_sequence"].mc_source(), "fig6")

    def run():
        spin, _ = port_module(module, PortingLevel.SPIN)
        full, report = port_module(module, PortingLevel.ATOMIG)
        return _wmm(spin), _wmm(full), report

    spin_check, full_check, report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_table(
        "figure6",
        "Figure 6: sequence count\n"
        f"Spin-only WMM: {'ok' if spin_check.ok else 'VIOLATION'}\n"
        f"AtoMig    WMM: {'ok' if full_check.ok else 'VIOLATION'}\n"
        f"explicit fences inserted: {report.fences_inserted}",
    )
    assert not spin_check.ok
    assert full_check.ok
    assert report.fences_inserted >= 3  # reader loop + writer stores


def test_figure7_mariadb_lf_hash_bug(benchmark, record_table):
    """Figure 7: the MariaDB lf-hash bug — found, explained, and fixed."""
    module = compile_source(BENCHMARKS["lf_hash"].mc_source(), "fig7")

    def run():
        tso = check_module(module, model="tso", max_steps=600)
        wmm = _wmm(module)
        ported, report = port_module(module, PortingLevel.ATOMIG)
        fixed = _wmm(ported)
        return tso, wmm, fixed, report

    tso, wmm, fixed, report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "figure7",
        "Figure 7: MariaDB lf-hash WMM bug\n"
        f"TSO original : {'ok' if tso.ok else 'VIOLATION'}\n"
        f"WMM original : {'ok' if wmm.ok else 'VIOLATION'} "
        f"(the MDEV-27088 bug)\n"
        f"WMM AtoMig   : {'ok' if fixed.ok else 'VIOLATION'} "
        f"({report.fences_inserted} fences, "
        f"{len(report.optimistic_loops)} optimistic loops)",
    )
    assert tso.ok, "the bug must not manifest on x86-TSO"
    assert not wmm.ok, "the bug must manifest on WMM"
    assert fixed.ok, "AtoMig's port must fix it"
    assert report.optimistic_loops
