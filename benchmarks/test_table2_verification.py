"""Table 2: verification results on ck and lf-hash.

Regenerates the paper's Original / Expl / Spin / AtoMig matrix by
model-checking every variant under the weak memory model and asserts an
exact match with the published table:

    ck_ring           x  ok  ok  ok
    ck_spinlock_cas   x  ok  ok  ok
    ck_spinlock_mcs   x  x   ok  ok
    ck_sequence       x  x   x   ok
    lf-hash           x  x   x   ok
"""

from repro.bench.tables import TABLE2_PAPER, format_table, table2


def test_table2_verification(benchmark, record_table):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["benchmark", "original", "expl", "spin", "atomig", "matches_paper"],
        title="Table 2: Verification results on ck and lf-hash (WMM)",
    )
    record_table("table2", text)
    for row in rows:
        expected = TABLE2_PAPER[row["benchmark"]]
        measured = (row["original"], row["expl"], row["spin"], row["atomig"])
        assert measured == expected, (
            f"{row['benchmark']}: measured {measured}, paper {expected}"
        )
